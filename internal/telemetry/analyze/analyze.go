// Package analyze turns an exported trace (the JSONL event stream written
// by telemetry.Tracer.WriteJSONL) back into span trees and answers the
// questions an operator asks of a trace: where did wall time go per phase
// (total vs self), what was the critical path, what does the flamegraph
// look like, and — given two traces — which phase is responsible for the
// difference.
//
// The parser is the exact inverse of WriteJSONL: one Event per line,
// strict JSON, rejected with line numbers on anything malformed. Dropped
// events are a fact of life (the tracer's buffer is capped), so an end
// event whose begin was dropped is counted, not fatal; a begin whose end
// was dropped shows up as an unfinished span.
//
// Every function in this package is deterministic: the same input bytes
// produce the same output bytes, regardless of map iteration order or the
// worker count that produced the trace. All ties break on span ID or name.
package analyze

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"kodan/internal/telemetry"
)

// maxLineBytes bounds one JSONL line; attribute maps are small, so a line
// longer than this is corruption, not data.
const maxLineBytes = 1 << 20

// ParseError reports a rejected input line. Line is 1-based.
type ParseError struct {
	Line int
	Err  error
}

func (e *ParseError) Error() string { return fmt.Sprintf("line %d: %v", e.Line, e.Err) }

func (e *ParseError) Unwrap() error { return e.Err }

// ReadEvents parses a JSONL event stream, one telemetry.Event per line.
// Any malformed, truncated, or semantically impossible line (unknown
// event kind, non-positive ID, begin without a name) fails with a
// *ParseError carrying its line number.
func ReadEvents(r io.Reader) ([]telemetry.Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
	var events []telemetry.Event
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(bytes.TrimSpace(raw)) == 0 {
			return nil, &ParseError{Line: line, Err: fmt.Errorf("empty line")}
		}
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		var e telemetry.Event
		if err := dec.Decode(&e); err != nil {
			return nil, &ParseError{Line: line, Err: fmt.Errorf("malformed event: %w", err)}
		}
		if dec.More() {
			return nil, &ParseError{Line: line, Err: fmt.Errorf("trailing data after event object")}
		}
		switch e.Ev {
		case "b":
			if e.Name == "" {
				return nil, &ParseError{Line: line, Err: fmt.Errorf("begin event without a name")}
			}
		case "e":
			// End events carry no name; nothing further to require.
		default:
			return nil, &ParseError{Line: line, Err: fmt.Errorf("unknown event kind %q", e.Ev)}
		}
		if e.ID <= 0 {
			return nil, &ParseError{Line: line, Err: fmt.Errorf("non-positive span id %d", e.ID)}
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, &ParseError{Line: line + 1, Err: err}
	}
	return events, nil
}

// Span is one reassembled span. EndNs is -1 while unfinished; only
// finished spans appear in Trace.Spans.
type Span struct {
	ID     int64
	Parent int64
	Name   string

	StartNs    int64
	EndNs      int64
	SimStartNs int64
	SimEndNs   int64
	Attrs      map[string]string

	// Children are the finished child spans, ordered by start time
	// (ID breaks ties).
	Children []*Span

	selfNs int64
}

// Dur is the span's wall-clock duration.
func (s *Span) Dur() time.Duration { return time.Duration(s.EndNs - s.StartNs) }

// Self is the span's wall time not covered by any finished child: the
// duration minus the union of child intervals (clamped to the span).
func (s *Span) Self() time.Duration { return time.Duration(s.selfNs) }

// Trace is a reassembled span forest.
type Trace struct {
	// Events is how many events the input carried.
	Events int
	// Spans holds every finished span, in begin order.
	Spans []*Span
	// Roots holds the finished spans with no finished parent, ordered by
	// start time (ID breaks ties).
	Roots []*Span
	// Unfinished lists the names of spans whose end event never arrived
	// (still open at export time, or the end was dropped at the buffer
	// cap), sorted.
	Unfinished []string
	// OrphanEnds counts end events whose begin event is missing — the
	// begin fell to the tracer's buffer cap.
	OrphanEnds int
}

// Build reassembles events (in record order, as ReadEvents returns them)
// into a span forest. Structural contradictions — duplicate begin or end
// for one span ID, a span ending before it begins — are errors carrying
// the offending event's 1-based position, which equals its line number
// when the events came from ReadEvents.
func Build(events []telemetry.Event) (*Trace, error) {
	t := &Trace{Events: len(events)}
	byID := make(map[int64]*Span, len(events)/2)
	order := make([]*Span, 0, len(events)/2)
	for i, e := range events {
		switch e.Ev {
		case "b":
			if _, dup := byID[e.ID]; dup {
				return nil, &ParseError{Line: i + 1, Err: fmt.Errorf("duplicate begin for span %d", e.ID)}
			}
			sp := &Span{ID: e.ID, Parent: e.Parent, Name: e.Name, StartNs: e.WallNs, EndNs: -1}
			byID[e.ID] = sp
			order = append(order, sp)
		case "e":
			sp, ok := byID[e.ID]
			if !ok {
				t.OrphanEnds++
				continue
			}
			if sp.EndNs >= 0 {
				return nil, &ParseError{Line: i + 1, Err: fmt.Errorf("duplicate end for span %d", e.ID)}
			}
			if e.WallNs < sp.StartNs {
				return nil, &ParseError{Line: i + 1, Err: fmt.Errorf("span %d ends before it begins", e.ID)}
			}
			sp.EndNs = e.WallNs
			sp.SimStartNs, sp.SimEndNs = e.SimStartNs, e.SimEndNs
			sp.Attrs = e.Attrs
		}
	}

	for _, sp := range order {
		if sp.EndNs < 0 {
			t.Unfinished = append(t.Unfinished, sp.Name)
			continue
		}
		t.Spans = append(t.Spans, sp)
	}
	sort.Strings(t.Unfinished)

	// Link finished children to finished parents; everything else roots.
	for _, sp := range t.Spans {
		parent, ok := byID[sp.Parent]
		if sp.Parent != 0 && ok && parent.EndNs >= 0 {
			parent.Children = append(parent.Children, sp)
		} else {
			t.Roots = append(t.Roots, sp)
		}
	}
	byStart := func(a, b *Span) bool {
		if a.StartNs != b.StartNs {
			return a.StartNs < b.StartNs
		}
		return a.ID < b.ID
	}
	sort.Slice(t.Roots, func(i, j int) bool { return byStart(t.Roots[i], t.Roots[j]) })
	for _, sp := range t.Spans {
		kids := sp.Children
		sort.Slice(kids, func(i, j int) bool { return byStart(kids[i], kids[j]) })
	}
	for _, sp := range t.Spans {
		sp.selfNs = computeSelf(sp)
	}
	return t, nil
}

// Parse reads and reassembles a trace in one step. Errors carry line
// numbers from either stage.
func Parse(r io.Reader) (*Trace, error) {
	events, err := ReadEvents(r)
	if err != nil {
		return nil, err
	}
	return Build(events)
}

// ParseFile parses the trace at path.
func ParseFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

// computeSelf subtracts the union of sp's child intervals (clamped to sp)
// from its duration. Children may overlap (concurrent workers under one
// parent), so intervals are merged, not summed.
func computeSelf(sp *Span) int64 {
	if len(sp.Children) == 0 {
		return sp.EndNs - sp.StartNs
	}
	type iv struct{ lo, hi int64 }
	ivs := make([]iv, 0, len(sp.Children))
	for _, c := range sp.Children {
		lo, hi := c.StartNs, c.EndNs
		if lo < sp.StartNs {
			lo = sp.StartNs
		}
		if hi > sp.EndNs {
			hi = sp.EndNs
		}
		if hi > lo {
			ivs = append(ivs, iv{lo, hi})
		}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	var covered, end int64
	end = -1 << 62
	var start int64
	open := false
	for _, v := range ivs {
		if !open || v.lo > end {
			if open {
				covered += end - start
			}
			start, end, open = v.lo, v.hi, true
		} else if v.hi > end {
			end = v.hi
		}
	}
	if open {
		covered += end - start
	}
	return (sp.EndNs - sp.StartNs) - covered
}

// PhaseStat aggregates every finished span sharing one name.
type PhaseStat struct {
	Name  string
	Count int
	Total time.Duration
	Self  time.Duration
	Max   time.Duration
}

// Phases aggregates the trace by span name: total wall time, self time,
// span count, and max single-span duration per phase. Sorted by self time
// descending (self, not total, is the honest answer to "where did the
// time actually go" — total double-counts parents); name breaks ties.
func (t *Trace) Phases() []PhaseStat {
	byName := make(map[string]*PhaseStat)
	for _, sp := range t.Spans {
		ps, ok := byName[sp.Name]
		if !ok {
			ps = &PhaseStat{Name: sp.Name}
			byName[sp.Name] = ps
		}
		ps.Count++
		ps.Total += sp.Dur()
		ps.Self += sp.Self()
		if d := sp.Dur(); d > ps.Max {
			ps.Max = d
		}
	}
	out := make([]PhaseStat, 0, len(byName))
	for _, ps := range byName {
		out = append(out, *ps)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Self != out[j].Self {
			return out[i].Self > out[j].Self
		}
		return out[i].Name < out[j].Name
	})
	return out
}
