package analyze

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// RenderSummary formats the per-phase digest of one trace: span/event
// counts and parse health on top, then the phase table (sorted by self
// time), then the topK slowest individual spans (non-positive topK means
// 10). Output is byte-deterministic for a given trace.
func (t *Trace) RenderSummary(topK int) string {
	if topK <= 0 {
		topK = 10
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d events, %d spans, %d roots\n", t.Events, len(t.Spans), len(t.Roots))
	if len(t.Unfinished) > 0 {
		fmt.Fprintf(&b, "unfinished spans (%d): %s\n", len(t.Unfinished), strings.Join(t.Unfinished, ", "))
	}
	if t.OrphanEnds > 0 {
		fmt.Fprintf(&b, "orphan end events (begin dropped at buffer cap): %d\n", t.OrphanEnds)
	}
	phases := t.Phases()
	if len(phases) > 0 {
		fmt.Fprintf(&b, "%-28s %8s %14s %14s %14s %14s\n", "phase", "spans", "self", "total", "mean", "max")
		for _, p := range phases {
			mean := time.Duration(0)
			if p.Count > 0 {
				mean = p.Total / time.Duration(p.Count)
			}
			fmt.Fprintf(&b, "%-28s %8d %14v %14v %14v %14v\n",
				p.Name, p.Count,
				p.Self.Round(time.Microsecond), p.Total.Round(time.Microsecond),
				mean.Round(time.Microsecond), p.Max.Round(time.Microsecond))
		}
	}
	slow := append([]*Span(nil), t.Spans...)
	sort.Slice(slow, func(i, j int) bool {
		if slow[i].Dur() != slow[j].Dur() {
			return slow[i].Dur() > slow[j].Dur()
		}
		return slow[i].ID < slow[j].ID
	})
	if len(slow) > topK {
		slow = slow[:topK]
	}
	if len(slow) > 0 {
		fmt.Fprintf(&b, "top %d slowest spans:\n", len(slow))
		for _, sp := range slow {
			fmt.Fprintf(&b, "  %-28s %14v%s\n", sp.Name, sp.Dur().Round(time.Microsecond), renderAttrs(sp.Attrs))
		}
	}
	return b.String()
}

// RenderShape formats only the trace's shape: one "name count" line per
// phase, sorted by name. The shape is invariant across worker counts and
// machine speed — two runs of the same workload at -parallel 1 and
// -parallel 4 produce byte-identical shapes even though every timestamp
// differs — which makes it the right artifact for CI to compare.
func (t *Trace) RenderShape() string {
	phases := t.Phases()
	sort.Slice(phases, func(i, j int) bool { return phases[i].Name < phases[j].Name })
	var b strings.Builder
	for _, p := range phases {
		fmt.Fprintf(&b, "%s %d\n", p.Name, p.Count)
	}
	if len(t.Unfinished) > 0 {
		fmt.Fprintf(&b, "unfinished %d\n", len(t.Unfinished))
	}
	return b.String()
}

// RenderCritical formats the critical path as a chronological table:
// offset from the path's start, segment duration, and the span owning
// the segment (with attributes).
func (t *Trace) RenderCritical() string {
	steps := t.CriticalPath()
	if len(steps) == 0 {
		return "critical path: empty trace\n"
	}
	start := steps[0].FromNs
	var total time.Duration
	for _, s := range steps {
		total += s.Dur()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "critical path: %d segments, %v\n", len(steps), total.Round(time.Microsecond))
	fmt.Fprintf(&b, "%14s %14s  %s\n", "offset", "dur", "span")
	for _, s := range steps {
		off := time.Duration(s.FromNs - start)
		fmt.Fprintf(&b, "%14v %14v  %s%s\n",
			off.Round(time.Microsecond), s.Dur().Round(time.Microsecond),
			s.Span.Name, renderAttrs(s.Span.Attrs))
	}
	return b.String()
}

// Render formats the diff as the per-phase delta table plus the variant
// attributes that changed. Deterministic for a given pair of traces.
func (d Diff) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace diff: self A %v, self B %v, net %+v\n",
		d.SelfA.Round(time.Microsecond), d.SelfB.Round(time.Microsecond), d.Net().Round(time.Microsecond))
	fmt.Fprintf(&b, "spans: A %d, B %d\n", d.SpansA, d.SpansB)
	if len(d.Rows) > 0 {
		fmt.Fprintf(&b, "%-28s %6s %6s %14s %14s %14s %8s\n",
			"phase", "nA", "nB", "selfA", "selfB", "delta", "attr%")
		for _, r := range d.Rows {
			fmt.Fprintf(&b, "%-28s %6d %6d %14v %14v %+14v %7.1f%%\n",
				r.Name, r.CountA, r.CountB,
				r.SelfA.Round(time.Microsecond), r.SelfB.Round(time.Microsecond),
				r.Delta.Round(time.Microsecond), r.AttrPct)
		}
	}
	if len(d.AttrChanges) > 0 {
		b.WriteString("changed attributes:\n")
		for _, c := range d.AttrChanges {
			fmt.Fprintf(&b, "  %-28s %s: %s -> %s\n", c.Phase, c.Key, c.A, c.B)
		}
	}
	return b.String()
}

// renderAttrs formats a span's attributes as sorted " k=v" suffixes.
func renderAttrs(attrs map[string]string) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%s", k, attrs[k])
	}
	return b.String()
}
