package analyze

import "time"

// Step is one chronological segment of the critical path: the interval
// [FromNs, ToNs) during which Span was the deepest work on the path.
type Step struct {
	Span   *Span
	FromNs int64
	ToNs   int64
}

// Dur is the segment's length.
func (s Step) Dur() time.Duration { return time.Duration(s.ToNs - s.FromNs) }

// CriticalPath extracts the chain of work that bounded the trace's wall
// time: starting from the longest root span, it repeatedly descends into
// the child that finishes last, attributing each uncovered gap to the
// parent's own work. The result is a chronological sequence of segments
// whose durations sum to the root's duration.
//
// The walk is the standard "last-finishing child" backward pass: at any
// instant the critical path is in the child that ends latest before the
// current frontier, or in the parent itself if no child covers the
// frontier. Ties (equal end or duration) break on span ID, so the same
// trace always yields the same path.
func (t *Trace) CriticalPath() []Step {
	if len(t.Roots) == 0 {
		return nil
	}
	root := t.Roots[0]
	for _, r := range t.Roots[1:] {
		if r.Dur() > root.Dur() || (r.Dur() == root.Dur() && r.ID < root.ID) {
			root = r
		}
	}
	// Segments are discovered frontier-backward (reverse chronological);
	// flip once at the end.
	var rev []Step
	criticalWalk(root, root.StartNs, root.EndNs, &rev)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// criticalWalk appends n's critical segments within [lo, hi) to out in
// reverse chronological order.
func criticalWalk(n *Span, lo, hi int64, out *[]Step) {
	frontier := hi
	// Walk children from latest-ending to earliest. Children is sorted by
	// start ascending; scanning from the back approximates end-descending,
	// but overlapping workers break that, so pick the max explicitly.
	remaining := append([]*Span(nil), n.Children...)
	for frontier > lo {
		var best *Span
		bestIdx := -1
		for i, c := range remaining {
			if c == nil || c.StartNs >= frontier {
				continue
			}
			end := c.EndNs
			if end > frontier {
				end = frontier
			}
			if best == nil || end > bestEnd(best, frontier) ||
				(end == bestEnd(best, frontier) && c.ID < best.ID) {
				best, bestIdx = c, i
			}
		}
		if best == nil {
			break
		}
		remaining[bestIdx] = nil
		cLo, cHi := best.StartNs, best.EndNs
		if cLo < lo {
			cLo = lo
		}
		if cHi > frontier {
			cHi = frontier
		}
		if cHi <= cLo {
			continue
		}
		if cHi < frontier {
			// The parent's own work covered (cHi, frontier).
			*out = append(*out, Step{Span: n, FromNs: cHi, ToNs: frontier})
		}
		criticalWalk(best, cLo, cHi, out)
		frontier = cLo
	}
	if frontier > lo {
		*out = append(*out, Step{Span: n, FromNs: lo, ToNs: frontier})
	}
}

func bestEnd(s *Span, frontier int64) int64 {
	if s.EndNs > frontier {
		return frontier
	}
	return s.EndNs
}
