package analyze

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Folded renders the trace as folded stacks — the interchange format
// flamegraph.pl and speedscope both accept: one line per unique stack,
// frames joined by ";", followed by a space and the stack's value. The
// value is self time in microseconds (rounded down), so a flamegraph's
// box widths show where wall time was actually spent, not double-counted
// through parents. Stacks are emitted in lexicographic order, making the
// output byte-deterministic for a given trace. Stacks whose self time
// rounds to zero microseconds are kept (value 0) so the shape of the
// trace survives even for fast phases.
//
// Frame names are sanitized before injection: ";" is the format's frame
// separator and " " terminates the stack, so either character inside a
// span name would corrupt the line (splitting one frame into two, or
// truncating the stack at the value boundary). Both are replaced with
// "_", matching flamegraph.pl's own cleanup convention.
func (t *Trace) Folded() []string {
	agg := make(map[string]int64)
	var visit func(sp *Span, prefix string)
	visit = func(sp *Span, prefix string) {
		stack := prefix + foldFrame(sp.Name)
		agg[stack] += int64(sp.Self())
		for _, c := range sp.Children {
			visit(c, stack+";")
		}
	}
	for _, r := range t.Roots {
		visit(r, "")
	}
	stacks := make([]string, 0, len(agg))
	for s := range agg {
		stacks = append(stacks, s)
	}
	sort.Strings(stacks)
	lines := make([]string, len(stacks))
	for i, s := range stacks {
		lines[i] = fmt.Sprintf("%s %d", s, agg[s]/1000)
	}
	return lines
}

// foldFrame makes a span name safe to use as a folded-stack frame.
func foldFrame(name string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case ';', ' ':
			return '_'
		}
		return r
	}, name)
}

// WriteFolded writes the folded stacks, one per line. An empty trace
// writes nothing.
func WriteFolded(w io.Writer, t *Trace) error {
	lines := t.Folded()
	if len(lines) == 0 {
		return nil
	}
	_, err := io.WriteString(w, strings.Join(lines, "\n")+"\n")
	return err
}
