package analyze

import (
	"sort"
	"strconv"
	"strings"
	"time"

	"kodan/internal/telemetry"
)

// DiffRow is one phase's contribution to the difference between two
// traces, keyed by span name.
type DiffRow struct {
	Name   string
	CountA int
	CountB int
	SelfA  time.Duration
	SelfB  time.Duration
	// Delta is SelfB - SelfA: positive means the phase got slower in B.
	Delta time.Duration
	// AttrPct is this phase's share of the net self-time change,
	// 100·Delta/(ΣSelfB−ΣSelfA). Shares are signed: a phase moving
	// against the net direction gets a negative share. Zero when the
	// traces' totals are equal.
	AttrPct float64
}

// AttrChange reports an attribute whose observed value set differs
// between the two traces for one phase — the label that says *what*
// changed between the runs (e.g. quantized=false -> true).
type AttrChange struct {
	Phase string
	Key   string
	A     string
	B     string
}

// Diff is the deterministic comparison of two traces.
type Diff struct {
	// Rows has one entry per phase present in either trace, ordered by
	// |Delta| descending (name breaks ties).
	Rows []DiffRow
	// SelfA and SelfB are each trace's summed self time; their difference
	// is the net change the rows attribute.
	SelfA time.Duration
	SelfB time.Duration
	// SpansA and SpansB count each trace's finished spans.
	SpansA int
	SpansB int
	// AttrChanges lists variant attributes whose value sets differ,
	// ordered by (Phase, Key). The request-ID attribute is excluded —
	// it differs between any two runs by construction.
	AttrChanges []AttrChange
}

// Net is the overall self-time change, SelfB - SelfA.
func (d Diff) Net() time.Duration { return d.SelfB - d.SelfA }

// Compare diffs two traces phase by phase. Output depends only on the
// two inputs; the same pair of traces always produces the same Diff.
func Compare(a, b *Trace) Diff {
	type side struct {
		count int
		self  time.Duration
	}
	phases := make(map[string]*[2]side)
	tally := func(t *Trace, idx int) time.Duration {
		var total time.Duration
		for _, sp := range t.Spans {
			p, ok := phases[sp.Name]
			if !ok {
				p = &[2]side{}
				phases[sp.Name] = p
			}
			p[idx].count++
			p[idx].self += sp.Self()
			total += sp.Self()
		}
		return total
	}
	d := Diff{
		SelfA:  tally(a, 0),
		SelfB:  tally(b, 1),
		SpansA: len(a.Spans),
		SpansB: len(b.Spans),
	}
	net := d.Net()
	for name, p := range phases {
		row := DiffRow{
			Name:   name,
			CountA: p[0].count,
			CountB: p[1].count,
			SelfA:  p[0].self,
			SelfB:  p[1].self,
			Delta:  p[1].self - p[0].self,
		}
		if net != 0 {
			row.AttrPct = 100 * float64(row.Delta) / float64(net)
		}
		d.Rows = append(d.Rows, row)
	}
	sort.Slice(d.Rows, func(i, j int) bool {
		di, dj := d.Rows[i].Delta, d.Rows[j].Delta
		if di < 0 {
			di = -di
		}
		if dj < 0 {
			dj = -dj
		}
		if di != dj {
			return di > dj
		}
		return d.Rows[i].Name < d.Rows[j].Name
	})
	d.AttrChanges = attrChanges(a, b)
	return d
}

// attrValueCap bounds how many distinct values one attribute's rendering
// lists; beyond it the set is summarized, keeping diff output readable
// when an attribute is per-item (station names, app indices).
const attrValueCap = 4

// attrChanges collects, per (phase, attribute key), the set of values
// observed on each side and reports the keys whose sets differ.
func attrChanges(a, b *Trace) []AttrChange {
	type pk struct{ phase, key string }
	vals := make(map[pk]*[2]map[string]bool)
	collect := func(t *Trace, idx int) {
		for _, sp := range t.Spans {
			for k, v := range sp.Attrs {
				if k == telemetry.RequestIDAttr {
					continue
				}
				key := pk{sp.Name, k}
				m, ok := vals[key]
				if !ok {
					m = &[2]map[string]bool{{}, {}}
					vals[key] = m
				}
				m[idx][v] = true
			}
		}
	}
	collect(a, 0)
	collect(b, 1)
	var out []AttrChange
	for key, m := range vals {
		ra, rb := renderValueSet(m[0]), renderValueSet(m[1])
		if ra != rb {
			out = append(out, AttrChange{Phase: key.phase, Key: key.key, A: ra, B: rb})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Phase != out[j].Phase {
			return out[i].Phase < out[j].Phase
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// renderValueSet renders a value set deterministically: sorted, comma
// joined, truncated past attrValueCap with a +N more marker.
func renderValueSet(set map[string]bool) string {
	if len(set) == 0 {
		return "(unset)"
	}
	vs := make([]string, 0, len(set))
	for v := range set {
		vs = append(vs, v)
	}
	sort.Strings(vs)
	if len(vs) > attrValueCap {
		extra := len(vs) - attrValueCap
		vs = vs[:attrValueCap]
		return strings.Join(vs, ",") + ",(+" + strconv.Itoa(extra) + " more)"
	}
	return strings.Join(vs, ",")
}
