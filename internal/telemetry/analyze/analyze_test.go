package analyze

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"kodan/internal/telemetry"
)

// ev builds one event with millisecond-scale wall stamps (1 unit = 1 ms),
// keeping hand-built test traces readable.
func bev(id, parent int64, name string, ms int64) telemetry.Event {
	return telemetry.Event{Ev: "b", ID: id, Parent: parent, Name: name, WallNs: ms * int64(time.Millisecond)}
}

func eev(id int64, ms int64, attrs map[string]string) telemetry.Event {
	return telemetry.Event{Ev: "e", ID: id, WallNs: ms * int64(time.Millisecond), Attrs: attrs}
}

func jsonl(t *testing.T, events []telemetry.Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func ms(d time.Duration) int64 { return int64(d / time.Millisecond) }

// TestRoundTrip drives a real Tracer through WriteJSONL and back through
// Parse: every finished span must come back with its name, parentage, and
// attributes intact.
func TestRoundTrip(t *testing.T) {
	tr := telemetry.NewTracer(0)
	root := tr.Begin("figure.fig8")
	child := root.Child("transform.app")
	child.Set("app", "3")
	child.Set("quantized", "true")
	grand := child.Child("nn.infer")
	grand.End()
	child.End()
	sib := root.Child("transform.app")
	sib.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	trace, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if trace.Events != 8 || len(trace.Spans) != 4 {
		t.Fatalf("events=%d spans=%d, want 8/4", trace.Events, len(trace.Spans))
	}
	if len(trace.Roots) != 1 || trace.Roots[0].Name != "figure.fig8" {
		t.Fatalf("roots = %+v, want single figure.fig8", trace.Roots)
	}
	r := trace.Roots[0]
	if len(r.Children) != 2 {
		t.Fatalf("root has %d children, want 2", len(r.Children))
	}
	c := r.Children[0]
	if c.Name != "transform.app" || c.Attrs["app"] != "3" || c.Attrs["quantized"] != "true" {
		t.Fatalf("child = %q attrs %v", c.Name, c.Attrs)
	}
	if len(c.Children) != 1 || c.Children[0].Name != "nn.infer" {
		t.Fatalf("grandchild missing: %+v", c.Children)
	}
	if len(trace.Unfinished) != 0 || trace.OrphanEnds != 0 {
		t.Fatalf("unfinished=%v orphans=%d, want none", trace.Unfinished, trace.OrphanEnds)
	}
}

// TestUnfinishedSpans covers spans still open at WriteJSONL time: they
// must be reported by name, and their finished children must still root.
func TestUnfinishedSpans(t *testing.T) {
	tr := telemetry.NewTracer(0)
	open := tr.Begin("sim.run")
	done := open.Child("sim.captures")
	done.End()
	// open is never ended.
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	trace, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Unfinished) != 1 || trace.Unfinished[0] != "sim.run" {
		t.Fatalf("Unfinished = %v, want [sim.run]", trace.Unfinished)
	}
	// The finished child of an unfinished parent becomes a root.
	if len(trace.Roots) != 1 || trace.Roots[0].Name != "sim.captures" {
		t.Fatalf("roots = %+v, want the orphaned child", trace.Roots)
	}
}

// TestOutOfOrderEnd covers children ended after their parent (legal with
// concurrent workers): the tree still builds, and the child's interval is
// clamped into the parent for self-time purposes.
func TestOutOfOrderEnd(t *testing.T) {
	events := []telemetry.Event{
		bev(1, 0, "parent", 0),
		bev(2, 1, "child", 10),
		eev(1, 50, nil), // parent ends first
		eev(2, 80, nil), // child outlives it
	}
	trace, err := Build(events)
	if err != nil {
		t.Fatal(err)
	}
	p := trace.Roots[0]
	if len(p.Children) != 1 {
		t.Fatalf("children = %d, want 1", len(p.Children))
	}
	// Child covers [10,80) but only [10,50) lies inside the parent:
	// parent self = 50 - 40 = 10ms; child self = its full 70ms.
	if got := ms(p.Self()); got != 10 {
		t.Fatalf("parent self = %dms, want 10", got)
	}
	if got := ms(p.Children[0].Self()); got != 70 {
		t.Fatalf("child self = %dms, want 70", got)
	}
}

// TestOrphanEnds covers end events whose begin was dropped at the buffer
// cap: counted, never fatal.
func TestOrphanEnds(t *testing.T) {
	events := []telemetry.Event{
		bev(5, 0, "kept", 0),
		eev(5, 10, nil),
		eev(99, 20, nil), // begin for 99 fell to the cap
	}
	trace, err := Build(events)
	if err != nil {
		t.Fatal(err)
	}
	if trace.OrphanEnds != 1 || len(trace.Spans) != 1 {
		t.Fatalf("orphans=%d spans=%d, want 1/1", trace.OrphanEnds, len(trace.Spans))
	}
}

// TestDroppedSpanAccounting: a cap-limited tracer must report its drops
// through Summarize, and the surviving JSONL must still parse with the
// truncation visible as unfinished spans.
func TestDroppedSpanAccounting(t *testing.T) {
	tr := telemetry.NewTracer(3)
	for i := 0; i < 5; i++ {
		tr.Begin("burst").End()
	}
	sum := telemetry.Summarize(tr, 0)
	if sum.Dropped != 7 { // 10 events total, 3 stored
		t.Fatalf("Dropped = %d, want 7", sum.Dropped)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	trace, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Stored events: b1, e1, b2 — one finished span, one unfinished.
	if len(trace.Spans) != 1 || len(trace.Unfinished) != 1 {
		t.Fatalf("spans=%d unfinished=%v, want 1 finished + 1 unfinished", len(trace.Spans), trace.Unfinished)
	}
}

// TestParseErrorsCarryLineNumbers rejects each class of malformed input
// with the offending 1-based line number.
func TestParseErrorsCarryLineNumbers(t *testing.T) {
	good := `{"ev":"b","id":1,"name":"x","wallNs":5}`
	cases := []struct {
		name  string
		input string
		line  int
		want  string
	}{
		{"truncated json", good + "\n" + `{"ev":"e","id":1,"wall`, 2, "malformed"},
		{"not json", "hello\n", 1, "malformed"},
		{"unknown field", `{"ev":"b","id":1,"name":"x","wallNs":5,"bogus":1}`, 1, "malformed"},
		{"empty line", good + "\n\n" + good, 2, "empty line"},
		{"unknown kind", `{"ev":"q","id":1,"wallNs":5}`, 1, `unknown event kind "q"`},
		{"zero id", `{"ev":"e","id":0,"wallNs":5}`, 1, "non-positive span id"},
		{"negative id", `{"ev":"e","id":-3,"wallNs":5}`, 1, "non-positive span id"},
		{"nameless begin", `{"ev":"b","id":1,"wallNs":5}`, 1, "begin event without a name"},
		{"trailing data", good + ` {"x":1}`, 1, "trailing data"},
		{"duplicate begin", good + "\n" + good, 2, "duplicate begin"},
		{"duplicate end", good + "\n" + `{"ev":"e","id":1,"wallNs":6}` + "\n" + `{"ev":"e","id":1,"wallNs":7}`, 3, "duplicate end"},
		{"end before begin", good + "\n" + `{"ev":"e","id":1,"wallNs":4}`, 2, "ends before it begins"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(tc.input))
			if err == nil {
				t.Fatal("Parse accepted malformed input")
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error %v is not a *ParseError", err)
			}
			if pe.Line != tc.line {
				t.Fatalf("error %q on line %d, want line %d", err, pe.Line, tc.line)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestSelfTimeOverlappingChildren: overlapping child intervals (parallel
// workers under one parent) are merged, not summed, before subtraction.
func TestSelfTimeOverlappingChildren(t *testing.T) {
	events := []telemetry.Event{
		bev(1, 0, "parent", 0),
		bev(2, 1, "a", 10),
		bev(3, 1, "b", 20), // overlaps a
		bev(4, 1, "c", 60),
		eev(2, 30, nil),
		eev(3, 50, nil),
		eev(4, 70, nil),
		eev(1, 100, nil),
	}
	trace, err := Build(events)
	if err != nil {
		t.Fatal(err)
	}
	// Union of children: [10,50) ∪ [60,70) = 50ms covered; self = 50ms.
	if got := ms(trace.Roots[0].Self()); got != 50 {
		t.Fatalf("parent self = %dms, want 50", got)
	}
	phases := trace.Phases()
	if phases[0].Name != "parent" || ms(phases[0].Self) != 50 {
		t.Fatalf("top phase = %+v, want parent/50ms", phases[0])
	}
}

// TestCriticalPath pins the last-finishing-child walk on a known tree.
func TestCriticalPath(t *testing.T) {
	events := []telemetry.Event{
		bev(1, 0, "root", 0),
		bev(2, 1, "early", 10),
		eev(2, 40, nil),
		bev(3, 1, "late", 30), // overlaps early, finishes last
		eev(3, 90, nil),
		eev(1, 100, nil),
	}
	trace, err := Build(events)
	if err != nil {
		t.Fatal(err)
	}
	steps := trace.CriticalPath()
	// Chronological: root [0,10) self, early [10,30), late [30,90),
	// root [90,100) self.
	want := []struct {
		name     string
		from, to int64
	}{
		{"root", 0, 10},
		{"early", 10, 30},
		{"late", 30, 90},
		{"root", 90, 100},
	}
	if len(steps) != len(want) {
		t.Fatalf("critical path has %d steps, want %d: %+v", len(steps), len(want), steps)
	}
	var total time.Duration
	for i, s := range steps {
		if s.Span.Name != want[i].name || ms(time.Duration(s.FromNs)) != want[i].from || ms(time.Duration(s.ToNs)) != want[i].to {
			t.Fatalf("step %d = %s [%d,%d)ms, want %s [%d,%d)", i,
				s.Span.Name, ms(time.Duration(s.FromNs)), ms(time.Duration(s.ToNs)),
				want[i].name, want[i].from, want[i].to)
		}
		total += s.Dur()
	}
	if total != trace.Roots[0].Dur() {
		t.Fatalf("path sums to %v, want root duration %v", total, trace.Roots[0].Dur())
	}
}

// TestFolded pins the folded-stack output: stacks sorted, self time in µs.
func TestFolded(t *testing.T) {
	events := []telemetry.Event{
		bev(1, 0, "root", 0),
		bev(2, 1, "leaf", 10),
		eev(2, 30, nil),
		eev(1, 100, nil),
	}
	trace, err := Build(events)
	if err != nil {
		t.Fatal(err)
	}
	got := trace.Folded()
	want := []string{
		"root 80000",      // 100 - 20 covered = 80ms self
		"root;leaf 20000", // 20ms self
	}
	if len(got) != len(want) {
		t.Fatalf("folded = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("folded[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestFoldedSanitizesFrames pins the separator handling: a ";" in a span
// name would split one frame into two, and a " " would terminate the
// stack before the value — both must be replaced, not emitted.
func TestFoldedSanitizesFrames(t *testing.T) {
	events := []telemetry.Event{
		bev(1, 0, "load data; phase one", 0),
		bev(2, 1, "inner step", 10),
		eev(2, 30, nil),
		eev(1, 100, nil),
	}
	trace, err := Build(events)
	if err != nil {
		t.Fatal(err)
	}
	got := trace.Folded()
	want := []string{
		"load_data__phase_one 80000",
		"load_data__phase_one;inner_step 20000",
	}
	if len(got) != len(want) {
		t.Fatalf("folded = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("folded[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	// Every emitted line must have exactly one space (the value
	// separator) and frames free of the ";" separator except between
	// frames — i.e. the line splits into stack and integer value.
	for _, line := range got {
		parts := strings.Split(line, " ")
		if len(parts) != 2 {
			t.Fatalf("line %q has %d space-separated fields, want 2", line, len(parts))
		}
	}
}

// TestCompare pins the diff: rows by |delta|, signed attribution shares,
// attribute-change labels, request-ID excluded.
func TestCompare(t *testing.T) {
	a, err := Build([]telemetry.Event{
		bev(1, 0, "nn.infer", 0), eev(1, 100, map[string]string{"quantized": "false", telemetry.RequestIDAttr: "aaaa"}),
		bev(2, 0, "sim.run", 200), eev(2, 240, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build([]telemetry.Event{
		bev(1, 0, "nn.infer", 0), eev(1, 40, map[string]string{"quantized": "true", telemetry.RequestIDAttr: "bbbb"}),
		bev(2, 0, "sim.run", 200), eev(2, 250, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	d := Compare(a, b)
	if ms(d.Net()) != -50 { // -60 (nn.infer) + 10 (sim.run)
		t.Fatalf("net = %v, want -50ms", d.Net())
	}
	if len(d.Rows) != 2 || d.Rows[0].Name != "nn.infer" || d.Rows[1].Name != "sim.run" {
		t.Fatalf("rows = %+v, want nn.infer first by |delta|", d.Rows)
	}
	if ms(d.Rows[0].Delta) != -60 {
		t.Fatalf("nn.infer delta = %v, want -60ms", d.Rows[0].Delta)
	}
	if got := d.Rows[0].AttrPct; got != 120 { // -60/-50
		t.Fatalf("nn.infer attr%% = %v, want 120", got)
	}
	if got := d.Rows[1].AttrPct; got != -20 { // +10/-50
		t.Fatalf("sim.run attr%% = %v, want -20", got)
	}
	if len(d.AttrChanges) != 1 {
		t.Fatalf("attr changes = %+v, want exactly the quantized flip", d.AttrChanges)
	}
	c := d.AttrChanges[0]
	if c.Phase != "nn.infer" || c.Key != "quantized" || c.A != "false" || c.B != "true" {
		t.Fatalf("attr change = %+v, want nn.infer quantized false->true", c)
	}
}

// TestDeterministicRendering: every renderer must produce identical bytes
// when the same input is parsed and rendered twice.
func TestDeterministicRendering(t *testing.T) {
	events := []telemetry.Event{
		bev(1, 0, "root", 0),
		bev(2, 1, "x", 5), eev(2, 20, map[string]string{"k": "v", "a": "b"}),
		bev(3, 1, "y", 20), eev(3, 60, nil),
		eev(1, 100, nil),
	}
	input := jsonl(t, events)
	render := func() string {
		tr, err := Parse(bytes.NewReader(input))
		if err != nil {
			t.Fatal(err)
		}
		tr2, err := Parse(bytes.NewReader(input))
		if err != nil {
			t.Fatal(err)
		}
		return tr.RenderSummary(0) + tr.RenderShape() + tr.RenderCritical() +
			strings.Join(tr.Folded(), "\n") + Compare(tr, tr2).Render()
	}
	first := render()
	for i := 0; i < 5; i++ {
		if got := render(); got != first {
			t.Fatalf("render %d differs from first:\n%s\nvs\n%s", i, got, first)
		}
	}
}

// TestRenderShapeIgnoresTimings: two traces with identical structure but
// different timestamps must render the same shape.
func TestRenderShapeIgnoresTimings(t *testing.T) {
	mk := func(scale int64) *Trace {
		tr, err := Build([]telemetry.Event{
			bev(1, 0, "root", 0),
			bev(2, 1, "work", 1*scale), eev(2, 2*scale, nil),
			bev(3, 1, "work", 3*scale), eev(3, 5*scale, nil),
			eev(1, 7*scale, nil),
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	if a, b := mk(1).RenderShape(), mk(97).RenderShape(); a != b {
		t.Fatalf("shapes differ:\n%s\nvs\n%s", a, b)
	}
}
