package telemetry

import (
	"context"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSafety is the package's core contract: every operation on nil
// telemetry values is a no-op, never a panic, so instrumented code runs
// unconditionally.
func TestNilSafety(t *testing.T) {
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil || r.Scope("x") != nil {
		t.Fatal("nil registry must yield nil metrics")
	}
	var sc *Scope
	if sc.Counter("x") != nil || sc.Gauge("x") != nil || sc.Histogram("x") != nil {
		t.Fatal("nil scope must yield nil metrics")
	}
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Load() != 0 {
		t.Fatal("nil counter must load 0")
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Load() != 0 || g.Max() != 0 {
		t.Fatal("nil gauge must load 0")
	}
	var h *Histogram
	h.Observe(1.5)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram must be empty")
	}
	if snap := h.Snapshot(); snap.Count != 0 {
		t.Fatal("nil histogram snapshot must be zero")
	}
	if snap := r.Snapshot(); snap.Counters != nil || snap.Gauges != nil || snap.Histograms != nil {
		t.Fatal("nil registry snapshot must be zero")
	}

	var tr *Tracer
	sp := tr.Begin("root")
	if sp != nil {
		t.Fatal("nil tracer must begin nil spans")
	}
	sp.Sim(time.Time{}, time.Time{})
	sp.Set("k", "v")
	if sp.Child("child") != nil {
		t.Fatal("nil span must child nil spans")
	}
	sp.End()
	sp.End() // double-End on nil is fine too
	if tr.Events() != nil || tr.Spans() != nil || tr.Dropped() != 0 {
		t.Fatal("nil tracer must report nothing")
	}
	if err := tr.WriteJSONL(&strings.Builder{}); err != nil {
		t.Fatalf("nil tracer WriteJSONL: %v", err)
	}
}

func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	g := r.Gauge("active")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if g.Load() != 0 {
		t.Fatalf("gauge = %d, want 0", g.Load())
	}
	if g.Max() < 1 || g.Max() > workers {
		t.Fatalf("gauge max = %d, want 1..%d", g.Max(), workers)
	}
	// Same name returns the same metric; counters never go negative.
	r.Counter("hits").Add(-5)
	if r.Counter("hits").Load() != workers*per {
		t.Fatal("negative Add must be ignored and lookups must share state")
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for _, v := range []float64{0.001, 0.002, 0.004, 0.008, 1.0} {
		h.Observe(v)
	}
	h.Observe(-3) // clamped to 0
	snap := h.Snapshot()
	if snap.Count != 6 {
		t.Fatalf("count = %d, want 6", snap.Count)
	}
	if snap.Min != 0 {
		t.Fatalf("min = %v, want 0 (clamped negative)", snap.Min)
	}
	if snap.Max != 1.0 {
		t.Fatalf("max = %v, want 1", snap.Max)
	}
	wantSum := 0.001 + 0.002 + 0.004 + 0.008 + 1.0
	if math.Abs(snap.Sum-wantSum) > 1e-12 {
		t.Fatalf("sum = %v, want %v", snap.Sum, wantSum)
	}
	// Quantile bounds: p50 must be an upper bound on the median sample
	// (0.002) but not wildly above the next bucket edge.
	if q := h.Quantile(0.5); q < 0.002 || q > 0.0041 {
		t.Fatalf("p50 = %v, want in [0.002, 0.0041]", q)
	}
	if q := h.Quantile(1.0); q < 1.0 {
		t.Fatalf("p100 = %v, want >= max sample", q)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w+1) * 0.001)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	var want float64
	for w := 1; w <= workers; w++ {
		want += float64(w) * 0.001 * per
	}
	if math.Abs(h.Sum()-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
	snap := h.Snapshot()
	if snap.Min != 0.001 || snap.Max != float64(workers)*0.001 {
		t.Fatalf("min/max = %v/%v, want 0.001/%v", snap.Min, snap.Max, float64(workers)*0.001)
	}
}

func TestScopePrefix(t *testing.T) {
	r := NewRegistry()
	r.Scope("sim").Counter("frames").Add(7)
	if got := r.Counter("sim.frames").Load(); got != 7 {
		t.Fatalf("scoped counter = %d, want 7", got)
	}
	snap := r.Snapshot()
	if snap.Counters["sim.frames"] != 7 {
		t.Fatalf("snapshot missing scoped counter: %+v", snap.Counters)
	}
	if !strings.Contains(snap.Render(), "sim.frames") {
		t.Fatal("Render must include metric names")
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Inc()
	r.Counter("a").Inc()
	r.Gauge("g").Set(2)
	r.Histogram("h").Observe(0.5)
	first, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := json.Marshal(r.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		if string(again) != string(first) {
			t.Fatalf("snapshot JSON not deterministic:\n%s\n%s", first, again)
		}
	}
}

// TestProbeContext exercises the context plumbing: probes round-trip,
// absent probes are the zero no-op, and StartSpan without a tracer is
// free of allocations in the span path.
func TestProbeContext(t *testing.T) {
	ctx := context.Background()
	if p := ProbeFrom(ctx); p.Enabled() {
		t.Fatal("empty context must yield disabled probe")
	}
	ctx2, sp := StartSpan(ctx, "noop")
	if sp != nil || ctx2 != ctx {
		t.Fatal("StartSpan without tracer must return (ctx, nil)")
	}
	sp.End()

	reg := NewRegistry()
	tr := NewTracer(0)
	ctx = WithProbe(ctx, Probe{Metrics: reg, Trace: tr})
	p := ProbeFrom(ctx)
	if p.Metrics != reg || p.Trace != tr || !p.Enabled() {
		t.Fatal("probe must round-trip through context")
	}
	ctx, root := StartSpan(ctx, "root")
	_, child := StartSpan(ctx, "child")
	child.End()
	root.End()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["child"].Parent != byName["root"].ID {
		t.Fatalf("child parent = %d, want root id %d", byName["child"].Parent, byName["root"].ID)
	}
}

// TestHistogramQuantileEdgeCases pins the quantile behavior on the
// degenerate distributions dashboards actually hit: no samples yet, a
// single sample, and every sample identical.
func TestHistogramQuantileEdgeCases(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		h := &Histogram{}
		for _, q := range []float64{0, 0.5, 0.99, 1} {
			if got := h.Quantile(q); got != 0 {
				t.Errorf("empty histogram Quantile(%v) = %v, want 0", q, got)
			}
		}
		s := h.Snapshot()
		if s.Count != 0 || s.Mean != 0 || s.Min != 0 || s.Max != 0 || s.P50 != 0 || s.P99 != 0 {
			t.Errorf("empty snapshot not all-zero: %+v", s)
		}
	})

	t.Run("single sample", func(t *testing.T) {
		h := &Histogram{}
		h.Observe(0.003)
		// Every quantile must land in the single sample's bucket: the
		// reported upper bound is >= the sample and within one doubling.
		for _, q := range []float64{0.01, 0.5, 0.99, 1} {
			got := h.Quantile(q)
			if got < 0.003 || got > 0.006*1.001 {
				t.Errorf("Quantile(%v) = %v, want in [0.003, 0.006]", q, got)
			}
		}
		s := h.Snapshot()
		if s.Count != 1 || s.Min != 0.003 || s.Max != 0.003 || s.Mean != 0.003 {
			t.Errorf("single-sample snapshot: %+v", s)
		}
	})

	t.Run("all identical", func(t *testing.T) {
		h := &Histogram{}
		for i := 0; i < 1000; i++ {
			h.Observe(0.010)
		}
		p50, p99 := h.Quantile(0.50), h.Quantile(0.99)
		if p50 != p99 {
			t.Errorf("identical samples: p50 %v != p99 %v", p50, p99)
		}
		if p50 < 0.010 || p50 > 0.020*1.001 {
			t.Errorf("p50 = %v, want within the 10ms sample's bucket", p50)
		}
		s := h.Snapshot()
		if s.Min != 0.010 || s.Max != 0.010 {
			t.Errorf("min/max drifted on identical samples: %+v", s)
		}
	})

	t.Run("zero sample", func(t *testing.T) {
		h := &Histogram{}
		h.Observe(0)
		if got := h.Quantile(0.5); got != histBase {
			t.Errorf("Quantile(0.5) after Observe(0) = %v, want first bucket edge %v", got, histBase)
		}
		if s := h.Snapshot(); s.Min != 0 || s.Count != 1 {
			t.Errorf("zero-sample snapshot: %+v (min must be a real 0, not 'unset')", s)
		}
	})

	t.Run("overflow bucket", func(t *testing.T) {
		h := &Histogram{}
		huge := 1e9 // past the last finite bucket edge
		h.Observe(huge)
		if got := h.Quantile(0.99); got != huge {
			t.Errorf("overflow-bucket quantile = %v, want observed max %v", got, huge)
		}
	})
}

// TestQuantileOverEdgeCases covers the delta-vector variant the flight
// recorder uses: empty vectors, single-bucket vectors, and the unbounded
// last bucket (which reports its lower edge, having no finite upper one).
func TestQuantileOverEdgeCases(t *testing.T) {
	if got := QuantileOver(nil, 0.5); got != 0 {
		t.Errorf("QuantileOver(nil) = %v, want 0", got)
	}
	if got := QuantileOver(make([]int64, histBuckets), 0.5); got != 0 {
		t.Errorf("QuantileOver(all-zero) = %v, want 0", got)
	}

	h := &Histogram{}
	h.Observe(0.003)
	h.Observe(0.003)
	if got, want := QuantileOver(h.BucketCounts(), 0.5), h.Quantile(0.5); got != want {
		t.Errorf("QuantileOver over full cumulative buckets = %v, want Quantile's %v", got, want)
	}

	last := make([]int64, histBuckets)
	last[histBuckets-1] = 3
	got := QuantileOver(last, 0.99)
	want := histBase * math.Pow(2, float64(histBuckets-2))
	if got != want {
		t.Errorf("last-bucket QuantileOver = %v, want lower bound %v", got, want)
	}
}

// TestBucketCountsSnapshotIsACopy: mutating the returned slice must not
// corrupt the histogram.
func TestBucketCountsSnapshotIsACopy(t *testing.T) {
	h := &Histogram{}
	h.Observe(0.5)
	b := h.BucketCounts()
	for i := range b {
		b[i] = 999
	}
	if h.Count() != 1 {
		t.Error("mutating BucketCounts result changed the histogram")
	}
	var total int64
	for _, c := range h.BucketCounts() {
		total += c
	}
	if total != 1 {
		t.Errorf("histogram buckets corrupted: total %d, want 1", total)
	}
	var nilH *Histogram
	if nilH.BucketCounts() != nil {
		t.Error("nil histogram BucketCounts should be nil")
	}
}

// TestRegistryStateDifferential: two States straddling traffic diff to
// exactly that traffic.
func TestRegistryStateDifferential(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat")
	h.Observe(0.001)
	before := reg.State()
	h.Observe(1.0)
	h.Observe(1.0)
	after := reg.State()

	b, a := before.Histograms["lat"], after.Histograms["lat"]
	if a.Count-b.Count != 2 {
		t.Fatalf("count delta = %d, want 2", a.Count-b.Count)
	}
	diff := make([]int64, len(a.Buckets))
	var n int64
	for i := range diff {
		diff[i] = a.Buckets[i] - b.Buckets[i]
		n += diff[i]
	}
	if n != 2 {
		t.Fatalf("bucket delta sum = %d, want 2", n)
	}
	// The interval held only slow samples; its p50 must ignore the fast
	// sample recorded before the window.
	if p50 := QuantileOver(diff, 0.5); p50 < 0.5 {
		t.Errorf("differential p50 = %v, want >= 0.5 (only 1.0s samples in window)", p50)
	}
	if ds := a.Sum - b.Sum; math.Abs(ds-2.0) > 1e-9 {
		t.Errorf("sum delta = %v, want 2.0", ds)
	}
}
