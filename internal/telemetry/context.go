package telemetry

import "context"

// Probe bundles the two telemetry sinks that ride a context through the
// hot paths: the metric registry and the span tracer. The zero Probe is
// the no-op default — both fields nil — so instrumented code can call
// ProbeFrom unconditionally and use the result without branching.
type Probe struct {
	Metrics *Registry
	Trace   *Tracer
}

// Enabled reports whether any sink is attached.
func (p Probe) Enabled() bool { return p.Metrics != nil || p.Trace != nil }

type ctxKey int

const (
	probeKey ctxKey = iota
	spanKey
)

// WithProbe attaches a probe to the context. Instrumented layers below —
// the simulator, the transformation engine, parallel.ForEach, nn training
// — pick it up with ProbeFrom and record into its sinks.
func WithProbe(ctx context.Context, p Probe) context.Context {
	return context.WithValue(ctx, probeKey, p)
}

// ProbeFrom returns the context's probe, or the zero (no-op) Probe.
func ProbeFrom(ctx context.Context) Probe {
	if p, ok := ctx.Value(probeKey).(Probe); ok {
		return p
	}
	return Probe{}
}

// WithSpan marks sp as the context's current span, so spans started below
// link to it as their parent.
func WithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey, sp)
}

// SpanFrom returns the context's current span (nil when none).
func SpanFrom(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey).(*Span)
	return sp
}

// StartSpan begins a span named name on the context's tracer, parented to
// the context's current span, and returns a context carrying the new span
// plus the span itself. With no tracer attached it returns (ctx, nil) —
// and the nil span's End is a no-op — so callers write exactly one
// pattern:
//
//	ctx, sp := telemetry.StartSpan(ctx, "sim.run")
//	defer sp.End()
//
// When the context carries a request ID (serving middleware mints one per
// request), the span is automatically annotated with it, so every span
// under a request — pool wait, transform, simulation — is correlatable
// with the request's slog lines.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	tr := ProbeFrom(ctx).Trace
	if tr == nil {
		return ctx, nil
	}
	var sp *Span
	if parent := SpanFrom(ctx); parent != nil {
		sp = parent.Child(name)
	} else {
		sp = tr.Begin(name)
	}
	if id := RequestIDFrom(ctx); id != "" {
		sp.Set(RequestIDAttr, id)
	}
	return WithSpan(ctx, sp), sp
}
