package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
)

// This file carries the structured-logging half of the observability
// plane: a *slog.Logger rides the context next to the Probe, and a
// request ID — minted once at the serving edge — rides along with both so
// one /plan request can be correlated across its slog lines and its
// spans (pool wait, transform, simulation) in the JSONL trace.

type logCtxKey int

const (
	loggerKey logCtxKey = iota
	requestIDKey
)

// nopLogger discards everything; LoggerFrom returns it when no logger is
// attached so instrumented code never branches on "is logging on".
var nopLogger = slog.New(slog.DiscardHandler)

// WithLogger attaches a structured logger to the context. A nil logger
// leaves the context unchanged.
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	if l == nil {
		return ctx
	}
	return context.WithValue(ctx, loggerKey, l)
}

// LoggerFrom returns the context's logger, or a no-op logger when none is
// attached — never nil, so callers log unconditionally.
func LoggerFrom(ctx context.Context) *slog.Logger {
	if l, ok := ctx.Value(loggerKey).(*slog.Logger); ok && l != nil {
		return l
	}
	return nopLogger
}

// RequestIDAttr is the attribute key under which the request ID appears
// on slog records and span annotations; sharing one constant keeps log
// and trace correlation greppable by the same string.
const RequestIDAttr = "requestId"

// NewRequestID mints a 16-hex-char random request ID. IDs are for
// correlation only — they never feed into any computation, so drawing
// from crypto/rand here does not perturb the repository's deterministic
// seeded paths.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// rand.Read failing means the platform entropy source is broken;
		// correlation degrades to a fixed sentinel rather than the request
		// failing.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// WithRequestID attaches a request ID to the context. Spans started below
// (StartSpan) automatically annotate themselves with it, and serving
// middleware puts the same ID on its slog lines, so the two telemetry
// streams join on the ID. An empty ID leaves the context unchanged.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestIDFrom returns the context's request ID ("" when none).
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// PropagateTelemetry copies the correlation state — current span and
// request ID — from one context onto another. The single-flight cache
// detaches computations from the leader request's cancellation by running
// them on the server's base context; this carries the leader's identity
// across that detach so the computation's spans still parent under (and
// carry the request ID of) the request that triggered them.
func PropagateTelemetry(from, to context.Context) context.Context {
	if sp := SpanFrom(from); sp != nil {
		to = WithSpan(to, sp)
	}
	if id := RequestIDFrom(from); id != "" {
		to = WithRequestID(to, id)
	}
	return to
}
