package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"regexp"
	"testing"
)

func TestLoggerFromNeverNil(t *testing.T) {
	ctx := context.Background()
	l := LoggerFrom(ctx)
	if l == nil {
		t.Fatal("LoggerFrom on a bare context returned nil")
	}
	l.Info("must not panic or write anywhere")

	var buf bytes.Buffer
	real := slog.New(slog.NewJSONHandler(&buf, nil))
	ctx = WithLogger(ctx, real)
	LoggerFrom(ctx).Info("hello")
	if buf.Len() == 0 {
		t.Fatal("attached logger did not receive the record")
	}

	// Nil logger leaves the existing attachment in place.
	buf.Reset()
	ctx = WithLogger(ctx, nil)
	LoggerFrom(ctx).Info("still routed")
	if buf.Len() == 0 {
		t.Fatal("WithLogger(nil) clobbered the attached logger")
	}
}

func TestNewRequestIDFormat(t *testing.T) {
	pat := regexp.MustCompile(`^[0-9a-f]{16}$`)
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewRequestID()
		if !pat.MatchString(id) {
			t.Fatalf("request ID %q is not 16 lowercase hex chars", id)
		}
		seen[id] = true
	}
	if len(seen) < 100 {
		t.Errorf("collisions in 100 request IDs: %d unique", len(seen))
	}
}

func TestRequestIDContext(t *testing.T) {
	ctx := context.Background()
	if RequestIDFrom(ctx) != "" {
		t.Fatal("bare context should carry no request ID")
	}
	ctx = WithRequestID(ctx, "abc123")
	if got := RequestIDFrom(ctx); got != "abc123" {
		t.Fatalf("RequestIDFrom = %q, want abc123", got)
	}
	// Empty ID leaves the context unchanged.
	if got := RequestIDFrom(WithRequestID(ctx, "")); got != "abc123" {
		t.Fatalf("WithRequestID(\"\") clobbered the ID: %q", got)
	}
}

// TestStartSpanAttachesRequestID: spans started under a request-ID context
// carry the ID as an attribute, which is what joins the JSONL trace to the
// slog stream.
func TestStartSpanAttachesRequestID(t *testing.T) {
	tr := NewTracer(0)
	ctx := WithProbe(context.Background(), Probe{Trace: tr})
	ctx = WithRequestID(ctx, "deadbeef00000000")

	_, sp := StartSpan(ctx, "work")
	sp.End()

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, line := range bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n")) {
		var ev map[string]interface{}
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("bad JSONL line: %v", err)
		}
		if attrs, ok := ev["attrs"].(map[string]interface{}); ok {
			if attrs[RequestIDAttr] == "deadbeef00000000" {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("no trace event carries %s=deadbeef00000000:\n%s", RequestIDAttr, buf.String())
	}
}

// TestPropagateTelemetry: the cache's context detach keeps the leader's
// span parentage and request ID while dropping its cancellation.
func TestPropagateTelemetry(t *testing.T) {
	tr := NewTracer(0)
	reqCtx := WithProbe(context.Background(), Probe{Trace: tr})
	reqCtx = WithRequestID(reqCtx, "feedface00000000")
	reqCtx, parent := StartSpan(reqCtx, "request")
	defer parent.End()

	reqCtx, cancelReq := context.WithCancel(reqCtx)
	base := WithProbe(context.Background(), Probe{Trace: tr})
	detached := PropagateTelemetry(reqCtx, base)
	cancelReq()

	if detached.Err() != nil {
		t.Fatal("detached context inherited the request's cancellation")
	}
	if got := RequestIDFrom(detached); got != "feedface00000000" {
		t.Fatalf("request ID not propagated: %q", got)
	}
	if SpanFrom(detached) != parent {
		t.Fatal("span not propagated across the detach")
	}

	// A child started on the detached context parents under the request
	// span and carries its ID.
	_, child := StartSpan(detached, "transform")
	child.End()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	// Begin events carry the name, end events the attrs; join them on ID.
	names := make(map[int64]string)
	var sawChild bool
	for _, line := range bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n")) {
		var ev struct {
			Ev     string            `json:"ev"`
			ID     int64             `json:"id"`
			Name   string            `json:"name"`
			Parent int64             `json:"parent"`
			Attrs  map[string]string `json:"attrs"`
		}
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Ev == "b" {
			names[ev.ID] = ev.Name
		}
		if ev.Ev == "e" && names[ev.ID] == "transform" &&
			ev.Attrs[RequestIDAttr] == "feedface00000000" && ev.Parent != 0 {
			sawChild = true
		}
	}
	if !sawChild {
		t.Errorf("detached child span missing parent link or request ID:\n%s", buf.String())
	}
}
