package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// fixedClock returns a deterministic monotonic clock for trace tests.
func fixedClock() func() time.Time {
	t0 := time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC)
	n := 0
	var mu sync.Mutex
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		n++
		return t0.Add(time.Duration(n) * time.Millisecond)
	}
}

func TestTracerBeginEnd(t *testing.T) {
	tr := NewTracer(0)
	tr.clock = fixedClock()

	root := tr.Begin("run")
	root.Sim(time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC), time.Date(2023, 3, 26, 0, 0, 0, 0, time.UTC))
	child := root.Child("captures")
	child.Set("sat", "3")
	child.End()
	root.End()

	events := tr.Events()
	if len(events) != 4 {
		t.Fatalf("events = %d, want 4", len(events))
	}
	if events[0].Ev != "b" || events[0].Name != "run" || events[0].Parent != 0 {
		t.Fatalf("bad root begin: %+v", events[0])
	}
	if events[1].Ev != "b" || events[1].Parent != events[0].ID {
		t.Fatalf("child begin not parent-linked: %+v", events[1])
	}
	if events[2].Ev != "e" || events[2].ID != events[1].ID || events[2].Attrs["sat"] != "3" {
		t.Fatalf("bad child end: %+v", events[2])
	}
	if events[3].SimStartNs == 0 || events[3].SimEndNs <= events[3].SimStartNs {
		t.Fatalf("root end must carry sim stamps: %+v", events[3])
	}

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	for _, s := range spans {
		if s.Dur <= 0 {
			t.Fatalf("span %q has non-positive duration %v", s.Name, s.Dur)
		}
	}
}

func TestTracerDoubleEndIgnored(t *testing.T) {
	tr := NewTracer(0)
	sp := tr.Begin("once")
	sp.End()
	sp.End()
	if got := len(tr.Events()); got != 2 {
		t.Fatalf("events = %d, want 2 (double End ignored)", got)
	}
}

// TestJSONLWellFormedAndBalanced is the trace-format contract the make
// trace target relies on: every line parses as one Event, and begin/end
// events balance even when spans are created concurrently.
func TestJSONLWellFormedAndBalanced(t *testing.T) {
	tr := NewTracer(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			root := tr.Begin(fmt.Sprintf("worker-%d", w))
			for i := 0; i < 50; i++ {
				sp := root.Child("item")
				sp.Set("i", fmt.Sprint(i))
				sp.End()
			}
			root.End()
		}(w)
	}
	wg.Wait()

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	wantEvents := 8 * (50 + 1) * 2
	if len(lines) != wantEvents {
		t.Fatalf("lines = %d, want %d", len(lines), wantEvents)
	}
	begins := map[int64]Event{}
	ends := 0
	for _, line := range lines {
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("malformed JSONL line %q: %v", line, err)
		}
		switch e.Ev {
		case "b":
			if _, dup := begins[e.ID]; dup {
				t.Fatalf("duplicate begin for span %d", e.ID)
			}
			begins[e.ID] = e
		case "e":
			b, ok := begins[e.ID]
			if !ok {
				t.Fatalf("end without begin for span %d", e.ID)
			}
			if e.WallNs < b.WallNs {
				t.Fatalf("span %d ends before it begins", e.ID)
			}
			ends++
		default:
			t.Fatalf("unknown event kind %q", e.Ev)
		}
	}
	if ends != len(begins) {
		t.Fatalf("begin/end unbalanced: %d begins, %d ends", len(begins), ends)
	}
	// Every non-root parent must reference a recorded span.
	for id, e := range begins {
		if e.Parent != 0 {
			if _, ok := begins[e.Parent]; !ok {
				t.Fatalf("span %d has unknown parent %d", id, e.Parent)
			}
		}
	}
}

func TestTracerCapDrops(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Begin("s").End()
	}
	if got := len(tr.Events()); got != 4 {
		t.Fatalf("events = %d, want cap 4", got)
	}
	if tr.Dropped() != 16 {
		t.Fatalf("dropped = %d, want 16", tr.Dropped())
	}
}

func TestSummarize(t *testing.T) {
	tr := NewTracer(0)
	tr.clock = fixedClock()
	for i := 0; i < 3; i++ {
		tr.Begin("fast").End()
	}
	slow := tr.Begin("slow")
	// Each child advances the fixed clock, so slow outlasts the fast total.
	slow.Child("nested").End()
	slow.Child("nested").End()
	slow.End()

	sum := Summarize(tr, 2)
	if sum.Spans != 6 {
		t.Fatalf("spans = %d, want 6", sum.Spans)
	}
	if sum.Phases[0].Name != "slow" {
		t.Fatalf("heaviest phase = %q, want slow", sum.Phases[0].Name)
	}
	if len(sum.Slowest) != 2 || sum.Slowest[0].Name != "slow" {
		t.Fatalf("slowest = %+v, want slow first, capped at 2", sum.Slowest)
	}
	out := sum.Render()
	for _, want := range []string{"trace summary: 6 spans", "slow", "fast", "top 2 slowest"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render missing %q:\n%s", want, out)
		}
	}
	// A summary over a nil tracer is empty but safe.
	empty := Summarize(nil, 0)
	if empty.Spans != 0 || len(empty.Phases) != 0 {
		t.Fatalf("nil tracer summary = %+v, want empty", empty)
	}
	_ = empty.Render()
}

// TestWriteJSONLWithUnfinishedSpans: spans still open at export time
// appear as begin events without a matching end — the analyzer reports
// them as unfinished — and Spans() omits them.
func TestWriteJSONLWithUnfinishedSpans(t *testing.T) {
	tr := NewTracer(0)
	tr.clock = fixedClock()
	open := tr.Begin("still-open")
	done := open.Child("closed")
	done.End()

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	begins, ends := map[int64]bool{}, map[int64]bool{}
	dec := json.NewDecoder(&buf)
	for dec.More() {
		var e Event
		if err := dec.Decode(&e); err != nil {
			t.Fatal(err)
		}
		switch e.Ev {
		case "b":
			begins[e.ID] = true
		case "e":
			ends[e.ID] = true
		}
	}
	if len(begins) != 2 || len(ends) != 1 {
		t.Fatalf("begins=%d ends=%d, want 2/1", len(begins), len(ends))
	}
	if ends[open.id] {
		t.Error("unfinished span has an end event")
	}
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Name != "closed" {
		t.Fatalf("Spans() = %+v, want only the closed child", spans)
	}
}

// TestOutOfOrderEnd: ending a parent before its child is legal (workers
// may outlive the spawning span); both spans still pair up.
func TestOutOfOrderEnd(t *testing.T) {
	tr := NewTracer(0)
	tr.clock = fixedClock()
	parent := tr.Begin("parent")
	child := parent.Child("child")
	parent.End() // out of order: parent first
	child.End()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("Spans() = %d, want 2", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["child"].Parent != byName["parent"].ID {
		t.Error("out-of-order end broke parent linkage")
	}
	if byName["child"].Dur < byName["parent"].Dur {
		t.Errorf("child (%v) should outlive parent (%v) here", byName["child"].Dur, byName["parent"].Dur)
	}
}

// TestSummarizeDroppedAccounting: Summarize must surface the cap's
// dropped-event count and digest only the spans that survived.
func TestSummarizeDroppedAccounting(t *testing.T) {
	tr := NewTracer(4)
	tr.clock = fixedClock()
	for i := 0; i < 8; i++ {
		tr.Begin("burst").End()
	}
	sum := Summarize(tr, 0)
	if sum.Dropped != 12 { // 16 events, 4 stored
		t.Fatalf("Dropped = %d, want 12", sum.Dropped)
	}
	if sum.Spans != 2 { // b1,e1,b2,e2 stored
		t.Fatalf("Spans = %d, want 2", sum.Spans)
	}
	if got := sum.Render(); !strings.Contains(got, "12 events dropped") {
		t.Errorf("Render() does not mention the drop count:\n%s", got)
	}
}
