package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one trace record: a span begin ("b") or end ("e"). The JSONL
// export writes one Event per line. Wall timestamps are Unix nanoseconds;
// spans whose work lives on the simulated clock additionally carry
// sim-time stamps (Unix nanoseconds of the simulated instant), following
// the repository's stamping rule: sim-time where available, wall-time
// everywhere and always.
type Event struct {
	// Ev is "b" (begin) or "e" (end).
	Ev string `json:"ev"`
	// ID identifies the span; begin and end share it.
	ID int64 `json:"id"`
	// Parent is the enclosing span's ID (0 = root).
	Parent int64 `json:"parent,omitempty"`
	// Name is the span's operation name (begin events only).
	Name string `json:"name,omitempty"`
	// WallNs is the wall-clock timestamp in Unix nanoseconds.
	WallNs int64 `json:"wallNs"`
	// SimNs marks the simulated instant the span covers, when the work is
	// driven by the simulation clock (end events; 0 = not sim-timed).
	SimStartNs int64 `json:"simStartNs,omitempty"`
	SimEndNs   int64 `json:"simEndNs,omitempty"`
	// Attrs carries small key/value annotations (end events only).
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Tracer records spans as begin/end events in memory, bounded by a cap so
// a runaway instrumented loop degrades into dropped events rather than
// unbounded growth. The zero value is not usable; create with NewTracer.
// A nil *Tracer is the no-op: Begin returns a nil *Span and every span
// method on nil does nothing.
type Tracer struct {
	mu      sync.Mutex
	events  []Event
	nextID  atomic.Int64
	dropped atomic.Int64
	cap     int
	clock   func() time.Time
}

// DefaultMaxEvents bounds a tracer's in-memory event buffer.
const DefaultMaxEvents = 1 << 20

// NewTracer returns a tracer holding at most maxEvents events
// (non-positive means DefaultMaxEvents).
func NewTracer(maxEvents int) *Tracer {
	if maxEvents <= 0 {
		maxEvents = DefaultMaxEvents
	}
	return &Tracer{cap: maxEvents, clock: time.Now}
}

// record appends one event, counting instead of storing beyond the cap.
func (t *Tracer) record(e Event) {
	t.mu.Lock()
	if len(t.events) < t.cap {
		t.events = append(t.events, e)
	} else {
		t.dropped.Add(1)
	}
	t.mu.Unlock()
}

// Dropped returns how many events the cap discarded (0 on nil).
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Begin starts a root span. Use (*Span).Child for nested work, or the
// context helpers (StartSpan) which link parents automatically.
func (t *Tracer) Begin(name string) *Span {
	return t.begin(name, 0)
}

func (t *Tracer) begin(name string, parent int64) *Span {
	if t == nil {
		return nil
	}
	s := &Span{t: t, id: t.nextID.Add(1), parent: parent, name: name, start: t.clock()}
	t.record(Event{Ev: "b", ID: s.id, Parent: parent, Name: name, WallNs: s.start.UnixNano()})
	return s
}

// Span is one traced operation. All methods are nil-safe no-ops, so
// instrumented code can unconditionally defer End().
type Span struct {
	t      *Tracer
	id     int64
	parent int64
	name   string
	start  time.Time

	mu       sync.Mutex
	simStart time.Time
	simEnd   time.Time
	attrs    map[string]string
	ended    bool
}

// Child starts a span parented to s.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.t.begin(name, s.id)
}

// Sim stamps the span with the simulated interval its work covers. Per
// the stamping rule, wall time is always recorded; sim time rides along
// when the operation advances the simulation clock (propagation, contact
// search, downlink allocation), letting trace readers line spans up
// against the mission timeline.
func (s *Span) Sim(start, end time.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.simStart, s.simEnd = start, end
	s.mu.Unlock()
}

// Set attaches a key/value annotation, recorded on the end event.
func (s *Span) Set(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// End records the span's end event. Extra End calls are ignored.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	e := Event{Ev: "e", ID: s.id, Parent: s.parent, WallNs: s.t.clock().UnixNano(), Attrs: s.attrs}
	if !s.simStart.IsZero() {
		e.SimStartNs = s.simStart.UnixNano()
		e.SimEndNs = s.simEnd.UnixNano()
	}
	s.mu.Unlock()
	s.t.record(e)
}

// Events returns a copy of the recorded events in record order (nil on a
// nil tracer).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// WriteJSONL writes every recorded event as one JSON object per line.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range t.Events() {
		if err := enc.Encode(e); err != nil { // Encode appends the newline
			return err
		}
	}
	return bw.Flush()
}

// SpanRecord is one completed span, reassembled from its begin/end pair.
type SpanRecord struct {
	ID     int64
	Parent int64
	Name   string
	Start  time.Time
	Dur    time.Duration
	Attrs  map[string]string
}

// Spans pairs begin/end events into completed spans, in begin order.
// Spans still open (or whose end event was dropped by the cap) are
// omitted.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	events := t.Events()
	open := make(map[int64]int, len(events)/2) // span id -> index into out
	out := make([]SpanRecord, 0, len(events)/2)
	for _, e := range events {
		switch e.Ev {
		case "b":
			open[e.ID] = len(out)
			out = append(out, SpanRecord{ID: e.ID, Parent: e.Parent, Name: e.Name, Start: time.Unix(0, e.WallNs), Dur: -1})
		case "e":
			if i, ok := open[e.ID]; ok {
				out[i].Dur = time.Duration(e.WallNs - out[i].Start.UnixNano())
				out[i].Attrs = e.Attrs
			}
		}
	}
	complete := out[:0]
	for _, r := range out {
		if r.Dur >= 0 {
			complete = append(complete, r)
		}
	}
	return complete
}
