package recorder

import (
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"time"
)

// This file is the live ops dashboard riding on the recorder: an SSE
// endpoint streaming samples as they are recorded, and a self-contained
// HTML page (zero external assets — inline CSS and JS, canvas-drawn
// sparklines) that renders the hot-path series an operator watches during
// a contact: transform latency, pool occupancy, cache hit rate, downlink
// utilization, and the mission-event and deferral-drain rates published
// by journaled simulation runs (sim.events.*, sim.drain.*).

// StreamHandler serves the recorder's samples as Server-Sent Events:
// first the retained fine-resolution history (so a freshly opened
// dashboard has a line to draw immediately), then every new sample as it
// is recorded. Each event is one JSON-encoded Sample under event type
// "sample". The stream runs until the client disconnects.
func (r *Recorder) StreamHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		flusher, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-store")
		w.Header().Set("X-Accel-Buffering", "no")
		w.WriteHeader(http.StatusOK)

		send := func(s Sample) error {
			data, err := json.Marshal(s)
			if err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "event: sample\ndata: %s\n\n", data)
			return err
		}

		if r == nil {
			// No recorder: an empty, immediately flushed stream (the page
			// shows "waiting for samples" rather than an error).
			fmt.Fprint(w, ": no recorder attached\n\n")
			flusher.Flush()
			<-req.Context().Done()
			return
		}

		ch, cancel := r.Subscribe(16)
		defer cancel()
		// History after subscribing: a sample recorded in between may be
		// delivered twice, which the dashboard tolerates (it keys on
		// wallMs); the reverse order could lose one entirely.
		for _, s := range r.Samples(time.Time{}) {
			if err := send(s); err != nil {
				return
			}
		}
		flusher.Flush()

		for {
			select {
			case <-req.Context().Done():
				return
			case s, ok := <-ch:
				if !ok {
					return
				}
				if err := send(s); err != nil {
					return
				}
				flusher.Flush()
			}
		}
	})
}

// PageHandler serves the dashboard page. streamPath is the URL of the
// SSE endpoint (absolute or relative to the page).
func (r *Recorder) PageHandler(title, streamPath string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		dashTmpl.Execute(w, map[string]string{ //nolint:errcheck // connection owns delivery
			"Title":  title,
			"Stream": streamPath,
		})
	})
}

var dashTmpl = template.Must(template.New("dash").Parse(`<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{{.Title}}</title>
<style>
  :root { color-scheme: dark; }
  body { background:#101418; color:#d8dee6; font:14px/1.4 ui-monospace,Menlo,Consolas,monospace; margin:24px; }
  h1 { font-size:16px; font-weight:600; margin:0 0 4px; }
  .sub { color:#7b8794; margin-bottom:20px; }
  .grid { display:grid; grid-template-columns:repeat(auto-fit,minmax(320px,1fr)); gap:16px; }
  .panel { background:#161c22; border:1px solid #242c35; border-radius:8px; padding:12px 14px; }
  .panel h2 { font-size:12px; font-weight:600; letter-spacing:.04em; text-transform:uppercase; color:#9aa7b4; margin:0 0 2px; }
  .val { font-size:22px; margin:2px 0 6px; }
  .unit { font-size:12px; color:#7b8794; }
  canvas { width:100%; height:64px; display:block; }
  #status { margin-top:16px; color:#7b8794; font-size:12px; }
</style>
</head>
<body>
<h1>{{.Title}}</h1>
<div class="sub">flight recorder &middot; live samples over SSE &middot; no external assets</div>
<div class="grid" id="grid"></div>
<div id="status">waiting for samples&hellip;</div>
<script>
"use strict";
// Each panel extracts one scalar per sample; missing metrics render as
// gaps so the page works against any registry contents.
const PANELS = [
  { key: "xform",   title: "transform latency p90", unit: "ms",
    get: s => { const h = (s.histograms||{})["server.transform_seconds"];
                return h && h.delta > 0 ? h.p90 * 1000 : null; } },
  { key: "pool",    title: "pool occupancy", unit: "workers",
    get: s => { const g = (s.gauges||{})["server.pool_occupancy"];
                return g ? g.value : null; } },
  { key: "cache",   title: "cache hit rate", unit: "%",
    get: s => { const c = s.counters||{};
                const h = c["server.cache.hits"], m = c["server.cache.misses"];
                if (!h && !m) return null;
                const d = (h?h.delta:0) + (m?m.delta:0);
                return d > 0 ? 100*(h?h.delta:0)/d : null; } },
  { key: "downlink", title: "downlink utilization", unit: "% of observed frames",
    get: s => { const h = (s.histograms||{})["sim.downlink_utilization"];
                return h && h.delta > 0 ? h.mean * 100 : null; } },
  { key: "reqs",    title: "request rate", unit: "req/s",
    get: s => { const c = s.counters||{};
                const t = c["server.http.requests_total"];
                if (t) return t.rate;
                let r = null;
                for (const k in c) if (k.startsWith("server.http.requests/"))
                  r = (r||0) + c[k].rate;
                return r; } },
  { key: "events",  title: "mission event rate", unit: "events/s",
    get: s => { const c = s.counters||{};
                let r = null;
                for (const k in c) if (k.startsWith("sim.events."))
                  r = (r||0) + c[k].rate;
                return r; } },
  { key: "drain",   title: "deferral drain delivered", unit: "Gbit/s",
    get: s => { const d = (s.counters||{})["sim.drain.delivered_bits"];
                return d ? d.rate / 1e9 : null; } },
  { key: "admit",   title: "admission rejects", unit: "429/s (all tenants)",
    get: s => { const c = s.counters||{};
                let r = null;
                for (const k in c)
                  if (k.startsWith("server.tenant.") && k.endsWith(".rejected"))
                    r = (r||0) + c[k].rate;
                return r; } },
  { key: "tenantq", title: "tenant queue depth", unit: "waiters (all tenants)",
    get: s => { const g = s.gauges||{};
                let d = null;
                for (const k in g)
                  if (k.startsWith("server.tenant.") && k.endsWith(".queue_depth"))
                    d = (d||0) + g[k].value;
                return d; } },
  { key: "batch",   title: "batch coalescing", unit: "requests per pass",
    get: s => { const c = s.counters||{};
                const f = c["server.batch.flushes"], m = c["server.batch.batched"];
                if (!f || f.delta <= 0) return null;
                return (m?m.delta:0) / f.delta; } },
  { key: "slo",     title: "slo worst state", unit: "0 ok · 1 warn · 2 page",
    get: s => { const g = s.gauges||{};
                let worst = null;
                for (const k in g)
                  if (k.startsWith("server.slo.") && k.endsWith(".state"))
                    worst = Math.max(worst === null ? 0 : worst, g[k].value);
                return worst; } },
];
const MAXPTS = 300, series = {}, latest = {};
const grid = document.getElementById("grid");
for (const p of PANELS) {
  series[p.key] = [];
  const el = document.createElement("div");
  el.className = "panel";
  el.innerHTML = '<h2>'+p.title+'</h2><div class="val" id="v-'+p.key+'">&ndash;</div>'+
                 '<canvas id="c-'+p.key+'" width="600" height="128"></canvas>'+
                 '<div class="unit">'+p.unit+'</div>';
  grid.appendChild(el);
}
function draw(key) {
  const c = document.getElementById("c-"+key), ctx = c.getContext("2d");
  const pts = series[key];
  ctx.clearRect(0,0,c.width,c.height);
  const vals = pts.filter(v => v !== null);
  if (!vals.length) return;
  const max = Math.max(...vals, 1e-9), min = Math.min(...vals, 0);
  const span = (max - min) || 1;
  ctx.strokeStyle = "#5ec8e5"; ctx.lineWidth = 2; ctx.beginPath();
  let started = false;
  pts.forEach((v,i) => {
    if (v === null) { started = false; return; }
    const x = i/(MAXPTS-1)*c.width;
    const y = c.height - 6 - (v - min)/span*(c.height-12);
    if (!started) { ctx.moveTo(x,y); started = true; } else ctx.lineTo(x,y);
  });
  ctx.stroke();
}
let samples = 0, lastWall = 0;
const es = new EventSource({{.Stream}});
es.addEventListener("sample", ev => {
  const s = JSON.parse(ev.data);
  if (s.wallMs <= lastWall) return; // history replays on reconnect
  lastWall = s.wallMs; samples++;
  for (const p of PANELS) {
    const v = p.get(s);
    const pts = series[p.key];
    pts.push(v);
    if (pts.length > MAXPTS) pts.shift();
    if (v !== null) latest[p.key] = v;
    const el = document.getElementById("v-"+p.key);
    el.textContent = latest[p.key] === undefined ? "–" :
      (Math.abs(latest[p.key]) >= 100 ? latest[p.key].toFixed(0) : latest[p.key].toFixed(2));
    draw(p.key);
  }
  document.getElementById("status").textContent =
    samples + " samples · last " + new Date(s.wallMs).toISOString() +
    " · interval " + s.durMs + "ms";
});
es.onerror = () => { document.getElementById("status").textContent = "stream disconnected – retrying…"; };
</script>
</body>
</html>
`))
