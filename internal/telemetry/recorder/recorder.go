// Package recorder is the flight recorder of the observability plane: a
// background sampler that snapshots a telemetry.Registry at a fixed
// interval into bounded ring buffers, turning the registry's cumulative
// counters, gauges, and histograms into a time series an operator can
// replay — per-interval deltas and rates for counters, last-value for
// gauges, rolling quantiles (computed from bucket-count diffs, never raw
// samples) for histograms.
//
// Memory is bounded by construction: a fine ring holds the most recent
// Capacity samples at the base interval, and every sample the fine ring
// evicts is folded into a coarse ring at CoarseFactor x the interval, so
// a long-running server retains recent history at full resolution and
// older history downsampled, never growing past the two fixed rings.
//
// Like the rest of the telemetry layer, the recorder only observes: it
// reads registry state and is forbidden from influencing any computation,
// which keeps figure outputs byte-identical with the recorder on or off.
// All methods on a nil *Recorder are safe no-ops.
package recorder

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"kodan/internal/telemetry"
)

// Options sizes a Recorder.
type Options struct {
	// Interval is the sampling period (default 1s).
	Interval time.Duration
	// Capacity is the fine ring length (default 600 — ten minutes of
	// history at the default interval).
	Capacity int
	// CoarseFactor is how many evicted fine samples merge into one coarse
	// sample (default 10).
	CoarseFactor int
	// CoarseCapacity is the coarse ring length (default 720 — two hours of
	// downsampled history at the defaults). Samples evicted from the
	// coarse ring are gone; that is the retention horizon.
	CoarseCapacity int
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = time.Second
	}
	if o.Capacity <= 0 {
		o.Capacity = 600
	}
	if o.CoarseFactor <= 0 {
		o.CoarseFactor = 10
	}
	if o.CoarseCapacity <= 0 {
		o.CoarseCapacity = 720
	}
	return o
}

// CounterSample is one counter's view over one sample interval.
type CounterSample struct {
	// Total is the cumulative count at sample time.
	Total int64 `json:"total"`
	// Delta is how much the counter advanced during the interval.
	Delta int64 `json:"delta"`
	// Rate is Delta per second.
	Rate float64 `json:"rate"`
}

// GaugeSample is one gauge's view at sample time (last value wins).
type GaugeSample struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// HistogramSample is one histogram's view over one sample interval:
// cumulative count plus the rolling statistics of just the samples that
// arrived during the interval.
type HistogramSample struct {
	Count int64   `json:"count"`
	Delta int64   `json:"delta"`
	Rate  float64 `json:"rate"`
	// Sum is the sum of the interval's samples; Mean is Sum/Delta.
	Sum  float64 `json:"sum"`
	Mean float64 `json:"mean"`
	// Rolling quantile upper bounds over the interval's samples, from
	// bucket-count diffs.
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
}

// Sample is one recorded tick of the registry.
type Sample struct {
	// WallMs is the sample timestamp in Unix milliseconds.
	WallMs int64 `json:"wallMs"`
	// DurMs is the interval the sample covers (coarse samples cover
	// several base intervals).
	DurMs      int64                      `json:"durMs"`
	Counters   map[string]CounterSample   `json:"counters,omitempty"`
	Gauges     map[string]GaugeSample     `json:"gauges,omitempty"`
	Histograms map[string]HistogramSample `json:"histograms,omitempty"`

	// histDeltas carries the interval's per-histogram bucket diffs so
	// downsampling can merge samples exactly; it never serializes.
	histDeltas map[string][]int64
}

// ring is a fixed-capacity FIFO of samples.
type ring struct {
	buf  []Sample
	head int // index of oldest
	n    int
}

func newRing(capacity int) *ring { return &ring{buf: make([]Sample, capacity)} }

// push appends s, returning the evicted oldest sample when full.
func (r *ring) push(s Sample) (evicted Sample, wasFull bool) {
	if r.n < len(r.buf) {
		r.buf[(r.head+r.n)%len(r.buf)] = s
		r.n++
		return Sample{}, false
	}
	evicted = r.buf[r.head]
	r.buf[r.head] = s
	r.head = (r.head + 1) % len(r.buf)
	return evicted, true
}

// all returns the samples oldest-first.
func (r *ring) all() []Sample {
	out := make([]Sample, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(r.head+i)%len(r.buf)])
	}
	return out
}

// Recorder samples a registry on a fixed interval. Create with New,
// start the background sampler with Start, stop it with Stop. Record
// takes one sample synchronously (the background loop uses it; tests and
// CLIs may call it directly without ever starting the goroutine).
type Recorder struct {
	reg  *telemetry.Registry
	opts Options

	mu      sync.Mutex
	fine    *ring
	coarse  *ring
	pending []Sample // evicted fine samples awaiting a coarse merge
	prev    telemetry.RegistryState
	prevAt  time.Time
	primed  bool
	subs    map[chan Sample]struct{}

	stopCh  chan struct{}
	doneCh  chan struct{}
	started bool
}

// New returns a recorder over reg (nil reg yields a nil recorder, whose
// every method is a no-op).
func New(reg *telemetry.Registry, opts Options) *Recorder {
	if reg == nil {
		return nil
	}
	opts = opts.withDefaults()
	return &Recorder{
		reg:    reg,
		opts:   opts,
		fine:   newRing(opts.Capacity),
		coarse: newRing(opts.CoarseCapacity),
		subs:   make(map[chan Sample]struct{}),
	}
}

// Interval returns the sampling period (0 on nil).
func (r *Recorder) Interval() time.Duration {
	if r == nil {
		return 0
	}
	return r.opts.Interval
}

// Start launches the background sampler. Extra Starts are no-ops.
func (r *Recorder) Start() {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.started {
		r.mu.Unlock()
		return
	}
	r.started = true
	r.stopCh = make(chan struct{})
	r.doneCh = make(chan struct{})
	r.mu.Unlock()

	// Prime the baseline so the first emitted sample covers one interval,
	// not process-start-to-now.
	r.prime()
	go func() {
		defer close(r.doneCh)
		t := time.NewTicker(r.opts.Interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				r.Record()
			case <-r.stopCh:
				return
			}
		}
	}()
}

// Stop halts the background sampler and waits for it to exit. Recorded
// history remains readable.
func (r *Recorder) Stop() {
	if r == nil {
		return
	}
	r.mu.Lock()
	if !r.started {
		r.mu.Unlock()
		return
	}
	r.started = false
	stop, done := r.stopCh, r.doneCh
	r.mu.Unlock()
	close(stop)
	<-done
}

// prime establishes the differential baseline without emitting a sample.
func (r *Recorder) prime() {
	st := r.reg.State()
	r.mu.Lock()
	r.prev, r.prevAt, r.primed = st, time.Now(), true
	r.mu.Unlock()
}

// Record takes one sample now: the delta between the registry's current
// state and the previous sample's. The sample lands in the fine ring and
// is broadcast to subscribers. The very first Record on an unprimed
// recorder only establishes the baseline and returns a zero-duration
// sample that is not stored.
func (r *Recorder) Record() Sample {
	if r == nil {
		return Sample{}
	}
	st := r.reg.State()
	now := time.Now()

	r.mu.Lock()
	if !r.primed {
		r.prev, r.prevAt, r.primed = st, now, true
		r.mu.Unlock()
		return Sample{WallMs: now.UnixMilli()}
	}
	s := diffSample(r.prev, st, r.prevAt, now)
	r.prev, r.prevAt = st, now
	if evicted, wasFull := r.fine.push(s); wasFull {
		r.pending = append(r.pending, evicted)
		if len(r.pending) >= r.opts.CoarseFactor {
			r.coarse.push(mergeSamples(r.pending))
			r.pending = r.pending[:0]
		}
	}
	for ch := range r.subs {
		select {
		case ch <- s:
		default: // slow subscriber: drop rather than stall the sampler
		}
	}
	r.mu.Unlock()
	return s
}

// Subscribe registers a live feed of future samples. The returned cancel
// must be called to release the subscription; after cancel the channel is
// closed. A subscriber that falls behind misses samples (the sampler
// never blocks on it).
func (r *Recorder) Subscribe(buf int) (<-chan Sample, func()) {
	if r == nil {
		ch := make(chan Sample)
		close(ch)
		return ch, func() {}
	}
	if buf < 1 {
		buf = 1
	}
	ch := make(chan Sample, buf)
	r.mu.Lock()
	r.subs[ch] = struct{}{}
	r.mu.Unlock()
	var once sync.Once
	return ch, func() {
		once.Do(func() {
			r.mu.Lock()
			delete(r.subs, ch)
			r.mu.Unlock()
			close(ch)
		})
	}
}

// Samples returns the retained history — coarse (older, downsampled)
// followed by fine — restricted to samples at or after since (zero since
// means everything).
func (r *Recorder) Samples(since time.Time) []Sample {
	if r == nil {
		return nil
	}
	cut := int64(0)
	if !since.IsZero() {
		cut = since.UnixMilli()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Sample, 0, r.coarse.n+len(r.pending)+r.fine.n)
	for _, s := range r.coarse.all() {
		if s.WallMs >= cut {
			out = append(out, s)
		}
	}
	for _, s := range r.pending {
		if s.WallMs >= cut {
			out = append(out, s)
		}
	}
	for _, s := range r.fine.all() {
		if s.WallMs >= cut {
			out = append(out, s)
		}
	}
	return out
}

// Fine returns the most recent n full-resolution samples, oldest first
// (fewer if the fine ring holds less; nil on a nil recorder or n <= 0).
// This is the windowing primitive for differential consumers — the SLO
// burn-rate engine reads its fast and slow windows from here.
func (r *Recorder) Fine(n int) []Sample {
	if r == nil || n <= 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	all := r.fine.all()
	if len(all) > n {
		all = all[len(all)-n:]
	}
	return all
}

// HistogramBucketDelta returns the named histogram's per-bucket count
// deltas over this sample's interval — index i counts observations that
// fell at or under telemetry.BucketUpperBound(i). Nil when the histogram
// did not exist at sample time. The slice is shared with the recorder's
// ring; callers must treat it as read-only.
func (s Sample) HistogramBucketDelta(name string) []int64 {
	return s.histDeltas[name]
}

// Window is the JSON export of a history window.
type Window struct {
	IntervalMs int64    `json:"intervalMs"`
	Samples    []Sample `json:"samples"`
}

// WriteJSON exports the retained window at or after since as one JSON
// document.
func (r *Recorder) WriteJSON(w io.Writer, since time.Time) error {
	if r == nil {
		_, err := io.WriteString(w, `{"intervalMs":0,"samples":[]}`+"\n")
		return err
	}
	enc := json.NewEncoder(w)
	return enc.Encode(Window{
		IntervalMs: r.opts.Interval.Milliseconds(),
		Samples:    r.Samples(since),
	})
}

// diffSample computes one sample from two registry states.
func diffSample(prev, cur telemetry.RegistryState, from, to time.Time) Sample {
	durMs := to.Sub(from).Milliseconds()
	if durMs < 1 {
		durMs = 1
	}
	secs := float64(durMs) / 1000
	s := Sample{WallMs: to.UnixMilli(), DurMs: durMs}

	if len(cur.Counters) > 0 {
		s.Counters = make(map[string]CounterSample, len(cur.Counters))
		for name, total := range cur.Counters {
			delta := total - prev.Counters[name]
			if delta < 0 { // registry replaced or counter reset
				delta = total
			}
			s.Counters[name] = CounterSample{Total: total, Delta: delta, Rate: float64(delta) / secs}
		}
	}
	if len(cur.Gauges) > 0 {
		s.Gauges = make(map[string]GaugeSample, len(cur.Gauges))
		for name, g := range cur.Gauges {
			s.Gauges[name] = GaugeSample{Value: g.Value, Max: g.Max}
		}
	}
	if len(cur.Histograms) > 0 {
		s.Histograms = make(map[string]HistogramSample, len(cur.Histograms))
		s.histDeltas = make(map[string][]int64, len(cur.Histograms))
		for name, h := range cur.Histograms {
			ph := prev.Histograms[name]
			delta := h.Count - ph.Count
			sum := h.Sum - ph.Sum
			var buckets []int64
			if delta < 0 { // reset: treat the whole current state as new
				delta, sum = h.Count, h.Sum
				buckets = append([]int64(nil), h.Buckets...)
			} else {
				buckets = make([]int64, len(h.Buckets))
				for i := range h.Buckets {
					buckets[i] = h.Buckets[i]
					if i < len(ph.Buckets) {
						buckets[i] -= ph.Buckets[i]
					}
					if buckets[i] < 0 {
						buckets[i] = 0
					}
				}
			}
			hs := HistogramSample{
				Count: h.Count, Delta: delta, Rate: float64(delta) / secs, Sum: sum,
				P50: telemetry.QuantileOver(buckets, 0.50),
				P90: telemetry.QuantileOver(buckets, 0.90),
				P99: telemetry.QuantileOver(buckets, 0.99),
			}
			if delta > 0 {
				hs.Mean = sum / float64(delta)
			}
			s.Histograms[name] = hs
			s.histDeltas[name] = buckets
		}
	}
	return s
}

// mergeSamples folds several consecutive samples into one coarse sample
// covering their combined interval. Counter deltas add; gauges keep the
// last value and the max of maxes; histogram bucket diffs add and the
// quantiles are recomputed over the merged distribution — exact, because
// the per-sample bucket diffs were retained.
func mergeSamples(in []Sample) Sample {
	if len(in) == 0 {
		return Sample{}
	}
	last := in[len(in)-1]
	out := Sample{WallMs: last.WallMs}
	for _, s := range in {
		out.DurMs += s.DurMs
	}
	secs := float64(out.DurMs) / 1000
	if secs <= 0 {
		secs = 1e-3
	}

	if len(last.Counters) > 0 {
		out.Counters = make(map[string]CounterSample, len(last.Counters))
		for name, c := range last.Counters {
			var delta int64
			for _, s := range in {
				delta += s.Counters[name].Delta
			}
			out.Counters[name] = CounterSample{Total: c.Total, Delta: delta, Rate: float64(delta) / secs}
		}
	}
	if len(last.Gauges) > 0 {
		out.Gauges = make(map[string]GaugeSample, len(last.Gauges))
		for name, g := range last.Gauges {
			max := g.Max
			for _, s := range in {
				if sg, ok := s.Gauges[name]; ok && sg.Max > max {
					max = sg.Max
				}
			}
			out.Gauges[name] = GaugeSample{Value: g.Value, Max: max}
		}
	}
	if len(last.Histograms) > 0 {
		out.Histograms = make(map[string]HistogramSample, len(last.Histograms))
		out.histDeltas = make(map[string][]int64, len(last.Histograms))
		for name, h := range last.Histograms {
			var delta int64
			var sum float64
			var buckets []int64
			for _, s := range in {
				hs, ok := s.Histograms[name]
				if !ok {
					continue
				}
				delta += hs.Delta
				sum += hs.Sum
				for i, b := range s.histDeltas[name] {
					if i >= len(buckets) {
						buckets = append(buckets, make([]int64, i+1-len(buckets))...)
					}
					buckets[i] += b
				}
			}
			hs := HistogramSample{
				Count: h.Count, Delta: delta, Rate: float64(delta) / secs, Sum: sum,
				P50: telemetry.QuantileOver(buckets, 0.50),
				P90: telemetry.QuantileOver(buckets, 0.90),
				P99: telemetry.QuantileOver(buckets, 0.99),
			}
			if delta > 0 {
				hs.Mean = sum / float64(delta)
			}
			out.Histograms[name] = hs
			out.histDeltas[name] = buckets
		}
	}
	return out
}
