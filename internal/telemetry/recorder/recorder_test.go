package recorder

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"kodan/internal/telemetry"
)

// record primes r (first call is baseline-only) — tests call it once
// before the samples they assert on.
func prime(r *Recorder) { r.Record() }

func TestCounterDeltasAndRates(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("reqs")
	r := New(reg, Options{})
	prime(r)

	c.Add(10)
	s1 := r.Record()
	cs := s1.Counters["reqs"]
	if cs.Total != 10 || cs.Delta != 10 {
		t.Fatalf("first sample: total=%d delta=%d, want 10/10", cs.Total, cs.Delta)
	}
	if cs.Rate <= 0 {
		t.Fatalf("rate = %v, want > 0", cs.Rate)
	}

	c.Add(5)
	s2 := r.Record()
	cs = s2.Counters["reqs"]
	if cs.Total != 15 || cs.Delta != 5 {
		t.Fatalf("second sample: total=%d delta=%d, want 15/5", cs.Total, cs.Delta)
	}

	// No traffic: delta and rate drop to zero while total holds.
	s3 := r.Record()
	cs = s3.Counters["reqs"]
	if cs.Total != 15 || cs.Delta != 0 || cs.Rate != 0 {
		t.Fatalf("idle sample: %+v, want total 15, delta 0, rate 0", cs)
	}
}

func TestGaugeLastValueWins(t *testing.T) {
	reg := telemetry.NewRegistry()
	g := reg.Gauge("occupancy")
	r := New(reg, Options{})
	prime(r)

	g.Set(3)
	g.Set(7)
	g.Set(2)
	s := r.Record()
	gs := s.Gauges["occupancy"]
	if gs.Value != 2 {
		t.Errorf("gauge value = %d, want last value 2", gs.Value)
	}
	if gs.Max != 7 {
		t.Errorf("gauge max = %d, want high-water 7", gs.Max)
	}
}

func TestHistogramRollingQuantiles(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("lat")
	r := New(reg, Options{})
	prime(r)

	// Interval 1: all fast samples.
	for i := 0; i < 100; i++ {
		h.Observe(0.001)
	}
	s1 := r.Record()
	hs := s1.Histograms["lat"]
	if hs.Delta != 100 || hs.Count != 100 {
		t.Fatalf("interval 1: delta=%d count=%d, want 100/100", hs.Delta, hs.Count)
	}
	if hs.P99 > 0.01 {
		t.Errorf("interval 1 p99 = %v, want fast (<= bucket edge above 1ms)", hs.P99)
	}

	// Interval 2: all slow samples. A cumulative histogram would still be
	// dominated by the 100 fast ones; the rolling view must see only slow.
	for i := 0; i < 10; i++ {
		h.Observe(1.0)
	}
	s2 := r.Record()
	hs = s2.Histograms["lat"]
	if hs.Delta != 10 || hs.Count != 110 {
		t.Fatalf("interval 2: delta=%d count=%d, want 10/110", hs.Delta, hs.Count)
	}
	if hs.P50 < 0.5 {
		t.Errorf("interval 2 rolling p50 = %v, want >= 0.5 (only slow samples in window)", hs.P50)
	}
	if hs.Mean < 0.9 || hs.Mean > 1.1 {
		t.Errorf("interval 2 rolling mean = %v, want ~1.0", hs.Mean)
	}

	// Interval 3: empty — rolling quantiles are zero, cumulative holds.
	s3 := r.Record()
	hs = s3.Histograms["lat"]
	if hs.Delta != 0 || hs.P50 != 0 || hs.P99 != 0 {
		t.Errorf("idle interval: %+v, want zero delta and quantiles", hs)
	}
	if hs.Count != 110 {
		t.Errorf("idle interval cumulative count = %d, want 110", hs.Count)
	}
}

// TestRingRetentionPastCapacity is the reservoir-past-window edge case:
// pushing more samples than the fine ring holds must keep memory bounded,
// retain the newest samples at full resolution, and fold evictions into
// the coarse ring rather than dropping them.
func TestRingRetentionPastCapacity(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("n")
	r := New(reg, Options{Capacity: 4, CoarseFactor: 2, CoarseCapacity: 3})
	prime(r)

	const total = 20
	for i := 0; i < total; i++ {
		c.Inc()
		r.Record()
	}

	all := r.Samples(time.Time{})
	// Bound: fine (4) + coarse (3) + pending (< factor).
	if len(all) > 4+3+1 {
		t.Fatalf("retained %d samples, want bounded by rings (<= 8)", len(all))
	}
	// Newest fine sample is the last recorded one.
	last := all[len(all)-1]
	if got := last.Counters["n"].Total; got != total {
		t.Errorf("newest sample total = %d, want %d", got, total)
	}
	// Chronological order throughout.
	for i := 1; i < len(all); i++ {
		if all[i].WallMs < all[i-1].WallMs {
			t.Fatalf("samples out of order at %d", i)
		}
	}
	// Coarse samples cover merged intervals: every counter increment that
	// fell out of the fine ring and survived coarse retention is summed,
	// not lost — deltas across all retained samples plus evicted-coarse
	// losses account for the total.
	var deltaSum int64
	for _, s := range all {
		deltaSum += s.Counters["n"].Delta
	}
	if deltaSum > total {
		t.Errorf("retained deltas sum to %d > %d recorded", deltaSum, total)
	}
	// The oldest retained coarse sample must be a merge (covers more than
	// one base interval => delta from multiple increments possible). At
	// minimum the merge machinery ran: some retained sample has Delta > 1
	// or the coarse ring is populated.
	coarsePopulated := false
	for _, s := range all {
		if s.Counters["n"].Delta > 1 {
			coarsePopulated = true
		}
	}
	if !coarsePopulated {
		t.Error("no merged (coarse) sample retained after wrapping the fine ring")
	}
}

func TestDownsampledHistogramMergeExact(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("lat")
	r := New(reg, Options{Capacity: 1, CoarseFactor: 2, CoarseCapacity: 4})
	prime(r)

	// Two samples that will both be evicted and merged into one coarse
	// sample: one fast-only interval, one slow-only interval.
	h.Observe(0.001)
	r.Record()
	h.Observe(1.0)
	r.Record()
	// Two more to push both originals out of the 1-slot fine ring.
	r.Record()
	r.Record()

	all := r.Samples(time.Time{})
	var merged *HistogramSample
	for i := range all {
		if hs, ok := all[i].Histograms["lat"]; ok && hs.Delta == 2 {
			merged = &hs
		}
	}
	if merged == nil {
		t.Fatalf("no merged sample with both observations found in %d samples", len(all))
	}
	// The merged distribution holds one fast and one slow sample: p50
	// sits at the fast edge, p99 at the slow edge.
	if merged.P50 > 0.01 {
		t.Errorf("merged p50 = %v, want fast-bucket edge", merged.P50)
	}
	if merged.P99 < 0.5 {
		t.Errorf("merged p99 = %v, want slow-bucket edge", merged.P99)
	}
	if merged.Sum < 1.0 || merged.Sum > 1.01 {
		t.Errorf("merged sum = %v, want ~1.001", merged.Sum)
	}
}

func TestSubscribeReceivesSamples(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("n")
	r := New(reg, Options{})
	prime(r)

	ch, cancel := r.Subscribe(4)
	defer cancel()
	c.Inc()
	r.Record()
	select {
	case s := <-ch:
		if s.Counters["n"].Delta != 1 {
			t.Errorf("subscriber sample delta = %d, want 1", s.Counters["n"].Delta)
		}
	case <-time.After(time.Second):
		t.Fatal("subscriber never received the sample")
	}
	cancel()
	if _, ok := <-ch; ok {
		t.Error("channel still open after cancel")
	}
}

func TestStartStopBackgroundSampler(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("n").Inc()
	r := New(reg, Options{Interval: 5 * time.Millisecond})
	r.Start()
	defer r.Stop()

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if len(r.Samples(time.Time{})) >= 2 {
			r.Stop()
			n := len(r.Samples(time.Time{}))
			time.Sleep(20 * time.Millisecond)
			if got := len(r.Samples(time.Time{})); got != n {
				t.Fatalf("sampler still recording after Stop: %d -> %d", n, got)
			}
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("background sampler produced no samples")
}

func TestWriteJSONWindow(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("n").Add(3)
	r := New(reg, Options{Interval: 250 * time.Millisecond})
	prime(r)
	r.Record()

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf, time.Time{}); err != nil {
		t.Fatal(err)
	}
	var w Window
	if err := json.Unmarshal(buf.Bytes(), &w); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if w.IntervalMs != 250 {
		t.Errorf("intervalMs = %d, want 250", w.IntervalMs)
	}
	if len(w.Samples) != 1 || w.Samples[0].Counters["n"].Total != 3 {
		t.Errorf("exported window = %+v, want one sample with total 3", w)
	}

	// A since cutoff in the future excludes everything.
	buf.Reset()
	if err := r.WriteJSON(&buf, time.Now().Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &w); err != nil {
		t.Fatal(err)
	}
	if len(w.Samples) != 0 {
		t.Errorf("future-since window has %d samples, want 0", len(w.Samples))
	}
}

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Start()
	r.Stop()
	r.Record()
	if s := r.Samples(time.Time{}); s != nil {
		t.Errorf("nil recorder Samples = %v", s)
	}
	ch, cancel := r.Subscribe(1)
	cancel()
	if _, ok := <-ch; ok {
		t.Error("nil recorder subscription channel not closed")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf, time.Time{}); err != nil {
		t.Fatal(err)
	}
	var w Window
	if err := json.Unmarshal(buf.Bytes(), &w); err != nil {
		t.Fatalf("nil recorder export invalid: %v", err)
	}
	if New(nil, Options{}) != nil {
		t.Error("New(nil) should return nil")
	}
}

func TestFineWindowing(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Scope("t").Counter("ticks")
	r := New(reg, Options{Capacity: 8})
	prime(r)
	for i := 0; i < 5; i++ {
		c.Inc()
		r.Record()
	}
	if got := len(r.Fine(3)); got != 3 {
		t.Fatalf("Fine(3) returned %d samples, want 3", got)
	}
	if got := len(r.Fine(100)); got != 5 {
		t.Fatalf("Fine(100) returned %d samples, want all 5", got)
	}
	// Oldest first: the last sample must be the most recent (highest total).
	win := r.Fine(2)
	if win[1].Counters["t.ticks"].Total != 5 {
		t.Errorf("Fine window not oldest-first: %+v", win)
	}
	if r.Fine(0) != nil {
		t.Error("Fine(0) should be nil")
	}
	var nilRec *Recorder
	if nilRec.Fine(3) != nil {
		t.Error("nil recorder Fine should be nil")
	}
}

func TestHistogramBucketDelta(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.Scope("t").Histogram("lat")
	r := New(reg, Options{})
	prime(r)
	h.Observe(0.5) // one observation in a known value range
	s := r.Record()
	buckets := s.HistogramBucketDelta("t.lat")
	if buckets == nil {
		t.Fatal("HistogramBucketDelta returned nil for a live histogram")
	}
	var total int64
	var under, over int64
	for i, n := range buckets {
		total += n
		if telemetry.BucketUpperBound(i) <= 1.0 {
			under += n
		} else {
			over += n
		}
	}
	if total != 1 || under != 1 || over != 0 {
		t.Errorf("bucket deltas total=%d under(1s)=%d over=%d, want 1/1/0", total, under, over)
	}
	if s.HistogramBucketDelta("t.missing") != nil {
		t.Error("unknown histogram should yield nil deltas")
	}
	// The next interval saw nothing: deltas must all be zero.
	s2 := r.Record()
	for i, n := range s2.HistogramBucketDelta("t.lat") {
		if n != 0 {
			t.Errorf("idle interval bucket %d delta = %d, want 0", i, n)
		}
	}
}
