package recorder

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"kodan/internal/telemetry"
)

// TestStreamDeliversLiveSamples is the SSE integration gate: a client of
// /debug/dash/stream receives at least two samples from a live recorder,
// each a valid JSON Sample, over one long-lived response.
func TestStreamDeliversLiveSamples(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("traffic")
	r := New(reg, Options{Interval: 10 * time.Millisecond})
	r.Start()
	defer r.Stop()

	// Background traffic so samples carry nonzero deltas.
	stopTraffic := make(chan struct{})
	defer close(stopTraffic)
	go func() {
		for {
			select {
			case <-stopTraffic:
				return
			case <-time.After(2 * time.Millisecond):
				c.Inc()
			}
		}
	}()

	ts := httptest.NewServer(r.StreamHandler())
	defer ts.Close()

	req, err := http.NewRequest("GET", ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}

	sc := bufio.NewScanner(resp.Body)
	var got []Sample
	sawEventLine := false
	for sc.Scan() && len(got) < 2 {
		line := sc.Text()
		if line == "event: sample" {
			sawEventLine = true
			continue
		}
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			var s Sample
			if err := json.Unmarshal([]byte(data), &s); err != nil {
				t.Fatalf("SSE data is not a valid Sample: %v\n%s", err, data)
			}
			got = append(got, s)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v (received %d samples)", err, len(got))
	}
	if len(got) < 2 {
		t.Fatalf("received %d SSE samples, want >= 2", len(got))
	}
	if !sawEventLine {
		t.Error("no 'event: sample' line preceded the data")
	}
	for i, s := range got {
		if s.WallMs == 0 {
			t.Errorf("sample %d has zero timestamp", i)
		}
	}
}

// TestStreamReplaysHistoryFirst: a client connecting after samples were
// recorded receives the retained history immediately, before any new
// sample is recorded.
func TestStreamReplaysHistoryFirst(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("n").Add(2)
	r := New(reg, Options{Interval: time.Hour}) // background sampler never fires
	r.Record()                                  // prime
	r.Record()                                  // one retained sample

	ts := httptest.NewServer(r.StreamHandler())
	defer ts.Close()

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	sc := bufio.NewScanner(resp.Body)
	deadline := time.AfterFunc(5*time.Second, func() { resp.Body.Close() })
	defer deadline.Stop()
	for sc.Scan() {
		if data, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
			var s Sample
			if err := json.Unmarshal([]byte(data), &s); err != nil {
				t.Fatal(err)
			}
			if s.Counters["n"].Total != 2 {
				t.Errorf("replayed sample total = %d, want 2", s.Counters["n"].Total)
			}
			return
		}
	}
	t.Fatal("no history sample replayed")
}

// TestDashPageSelfContained: the page handler serves HTML with inline
// assets only — no external stylesheet, script, or image references —
// and points its EventSource at the configured stream path.
func TestDashPageSelfContained(t *testing.T) {
	reg := telemetry.NewRegistry()
	r := New(reg, Options{})
	ts := httptest.NewServer(r.PageHandler("test ops", "/debug/dash/stream"))
	defer ts.Close()

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteString("\n")
	}
	body := sb.String()

	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("Content-Type = %q", ct)
	}
	if !strings.Contains(body, "test ops") {
		t.Error("page missing title")
	}
	if !strings.Contains(body, "/debug/dash/stream") {
		t.Error("page does not reference the stream path")
	}
	for _, external := range []string{"src=\"http", "href=\"http", "url(http", "@import"} {
		if strings.Contains(body, external) {
			t.Errorf("page references an external asset (%q)", external)
		}
	}
	for _, series := range []string{"server.transform_seconds", "server.pool_occupancy", "server.cache.hits", "sim.downlink_utilization"} {
		if !strings.Contains(body, series) {
			t.Errorf("page missing sparkline series %q", series)
		}
	}
}
