package server

import "kodan/internal/shardcache"

// The server's result cache is the sharded single-flight cache in
// internal/shardcache: consistent hashing across CacheShards independent
// shards, bounded LRU retention (Config.CacheEntries), reference-counted
// cancellation, and per-shard plus aggregate counters in the shared
// telemetry registry. The aliases below keep the server's historical
// names (CacheSource, CacheHit, ...) for handlers and tests.

// Cache is the sharded single-flight result cache.
type Cache = shardcache.Cache

// CacheSource says how a cache lookup was served.
type CacheSource = shardcache.Source

// Lookup outcomes.
const (
	// CacheMiss means the caller became the leader and computed the value.
	CacheMiss = shardcache.Miss
	// CacheHit means a previously completed value was returned.
	CacheHit = shardcache.Hit
	// CacheJoin means the caller attached to an in-flight computation
	// (single-flight deduplication).
	CacheJoin = shardcache.Join
)
