package server

import (
	"context"
	"sync"

	"kodan/internal/telemetry"
)

// CacheSource says how a cache lookup was served.
type CacheSource int

// Lookup outcomes.
const (
	// CacheMiss means the caller became the leader and computed the value.
	CacheMiss CacheSource = iota
	// CacheHit means a previously completed value was returned.
	CacheHit
	// CacheJoin means the caller attached to an in-flight computation
	// (single-flight deduplication).
	CacheJoin
)

// String implements fmt.Stringer, for the X-Kodan-Cache response header.
func (s CacheSource) String() string {
	switch s {
	case CacheHit:
		return "hit"
	case CacheJoin:
		return "join"
	default:
		return "miss"
	}
}

// Cache is a single-flight result cache. For each key, at most one
// computation runs at a time; concurrent callers with the same key attach
// to the in-flight computation and all receive the same value. Successful
// results are retained indefinitely (the key space — seeds x apps x
// deployments — is small and every value is deterministic); errors are
// never cached.
//
// Cancellation is reference-counted: the computation runs on a context
// derived from the cache's base context, and when the last waiting caller
// abandons the key (its own request context done), the computation context
// is cancelled so the worker can stop promptly. A later request for the
// same key restarts the computation cleanly.
type Cache struct {
	base context.Context

	// Lookup outcomes live in the shared telemetry registry (scope
	// "server.cache") so the flight recorder and dashboard see hit-rate
	// time series, not just the cumulative totals /metrics reports.
	hits   *telemetry.Counter
	misses *telemetry.Counter
	joins  *telemetry.Counter

	mu      sync.Mutex
	entries map[string]*cacheEntry
}

type cacheEntry struct {
	done      chan struct{}
	val       interface{}
	err       error
	waiters   int
	completed bool
	cancel    context.CancelFunc
}

// NewCache returns a cache whose computations are bounded by base: when
// base is cancelled (server shutdown), every in-flight computation is too.
// Lookup-outcome counters are created in scope (nil scope means they are
// no-ops and Stats reads zeros).
func NewCache(base context.Context, scope *telemetry.Scope) *Cache {
	return &Cache{
		base:    base,
		hits:    scope.Counter("hits"),
		misses:  scope.Counter("misses"),
		joins:   scope.Counter("joins"),
		entries: make(map[string]*cacheEntry),
	}
}

// Stats returns cumulative hit/miss/join counts.
func (c *Cache) Stats() (hits, misses, joins int64) {
	return c.hits.Load(), c.misses.Load(), c.joins.Load()
}

// Len returns the number of completed entries plus in-flight computations.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Do returns the cached value for key, or computes it with fn. fn receives
// a context tied to the lifetime of the interested callers (see type
// comment); ctx only governs how long this caller waits. On ctx
// expiry the caller detaches and receives ctx.Err() while the computation
// continues for any remaining waiters.
func (c *Cache) Do(ctx context.Context, key string, fn func(context.Context) (interface{}, error)) (interface{}, CacheSource, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		if e.completed {
			c.hits.Inc()
			c.mu.Unlock()
			return e.val, CacheHit, e.err
		}
		e.waiters++
		c.joins.Inc()
		c.mu.Unlock()
		return c.wait(ctx, key, e, CacheJoin)
	}

	cctx, cancel := context.WithCancel(c.base)
	// The computation is detached from the leader's cancellation (it
	// belongs to every waiter), but keeps the leader's identity: its spans
	// parent under the leader's request span and carry its request ID.
	cctx = telemetry.PropagateTelemetry(ctx, cctx)
	e := &cacheEntry{done: make(chan struct{}), waiters: 1, cancel: cancel}
	c.entries[key] = e
	c.misses.Inc()
	c.mu.Unlock()

	go func() {
		val, err := fn(cctx)
		c.mu.Lock()
		e.val, e.err = val, err
		e.completed = true
		if err != nil && c.entries[key] == e {
			// Never cache failures; the next request retries.
			delete(c.entries, key)
		}
		close(e.done)
		c.mu.Unlock()
		cancel()
	}()
	return c.wait(ctx, key, e, CacheMiss)
}

// wait blocks until the entry completes or the caller's context is done.
func (c *Cache) wait(ctx context.Context, key string, e *cacheEntry, src CacheSource) (interface{}, CacheSource, error) {
	select {
	case <-e.done:
		return e.val, src, e.err
	case <-ctx.Done():
		c.mu.Lock()
		e.waiters--
		if e.waiters == 0 && !e.completed {
			// Last interested caller gone: stop the computation and clear
			// the slot so a future request restarts it.
			e.cancel()
			if c.entries[key] == e {
				delete(c.entries, key)
			}
		}
		c.mu.Unlock()
		return nil, src, ctx.Err()
	}
}
