package server

import (
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics collects the server's ops counters: per-route request counts and
// latency percentiles, cache hit/miss/join counts, transform lifecycle
// counts, and worker-pool gauges. It is exported as JSON by GET /metrics.
type Metrics struct {
	start time.Time

	mu     sync.Mutex
	routes map[string]*routeStats
	window int

	transformsStarted   atomic.Int64
	transformsCompleted atomic.Int64
	transformsCancelled atomic.Int64
	transformsFailed    atomic.Int64
}

// routeStats accumulates one route's counters and a bounded latency
// reservoir (the most recent window observations).
type routeStats struct {
	count    int64
	byStatus map[int]int64
	lat      []float64 // ring buffer, milliseconds
	n        int       // total observations ever
}

// NewMetrics returns a collector keeping the given number of latency
// samples per route (0 means a 512-sample default).
func NewMetrics(window int) *Metrics {
	if window <= 0 {
		window = 512
	}
	return &Metrics{start: time.Now(), routes: make(map[string]*routeStats), window: window}
}

// Observe records one served request.
func (m *Metrics) Observe(route string, status int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rs, ok := m.routes[route]
	if !ok {
		rs = &routeStats{byStatus: make(map[int]int64), lat: make([]float64, 0, m.window)}
		m.routes[route] = rs
	}
	rs.count++
	rs.byStatus[status]++
	ms := float64(d) / float64(time.Millisecond)
	if len(rs.lat) < m.window {
		rs.lat = append(rs.lat, ms)
	} else {
		rs.lat[rs.n%m.window] = ms
	}
	rs.n++
}

// Transform lifecycle hooks, called by the server around each underlying
// transformation run.
func (m *Metrics) TransformStarted()   { m.transformsStarted.Add(1) }
func (m *Metrics) TransformCompleted() { m.transformsCompleted.Add(1) }
func (m *Metrics) TransformCancelled() { m.transformsCancelled.Add(1) }
func (m *Metrics) TransformFailed()    { m.transformsFailed.Add(1) }

// LatencySnapshot holds nearest-rank percentiles in milliseconds over the
// route's reservoir.
type LatencySnapshot struct {
	P50 float64 `json:"p50Ms"`
	P90 float64 `json:"p90Ms"`
	P99 float64 `json:"p99Ms"`
	Max float64 `json:"maxMs"`
}

// RouteSnapshot is one route's exported counters.
type RouteSnapshot struct {
	Count    int64            `json:"count"`
	ByStatus map[string]int64 `json:"byStatus"`
	Latency  LatencySnapshot  `json:"latency"`
}

// CacheSnapshot is the cache's exported counters.
type CacheSnapshot struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Joins   int64 `json:"singleFlightJoins"`
	Entries int   `json:"entries"`
}

// TransformSnapshot is the transform lifecycle counters.
type TransformSnapshot struct {
	Started   int64 `json:"started"`
	Completed int64 `json:"completed"`
	Cancelled int64 `json:"cancelled"`
	Failed    int64 `json:"failed"`
}

// Snapshot is the full /metrics document.
type Snapshot struct {
	UptimeSeconds float64                  `json:"uptimeSeconds"`
	Requests      map[string]RouteSnapshot `json:"requests"`
	Cache         CacheSnapshot            `json:"cache"`
	Pool          PoolStats                `json:"pool"`
	Transforms    TransformSnapshot        `json:"transforms"`
}

// Snapshot assembles the exported document from the collector plus the
// cache and pool gauges.
func (m *Metrics) Snapshot(cache *Cache, pool *Pool) Snapshot {
	snap := Snapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Requests:      make(map[string]RouteSnapshot),
		Transforms: TransformSnapshot{
			Started:   m.transformsStarted.Load(),
			Completed: m.transformsCompleted.Load(),
			Cancelled: m.transformsCancelled.Load(),
			Failed:    m.transformsFailed.Load(),
		},
	}
	if cache != nil {
		h, mi, j := cache.Stats()
		snap.Cache = CacheSnapshot{Hits: h, Misses: mi, Joins: j, Entries: cache.Len()}
	}
	if pool != nil {
		snap.Pool = pool.Stats()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for route, rs := range m.routes {
		out := RouteSnapshot{Count: rs.count, ByStatus: make(map[string]int64)}
		for code, n := range rs.byStatus {
			out.ByStatus[strconv.Itoa(code)] = n
		}
		if len(rs.lat) > 0 {
			sorted := append([]float64(nil), rs.lat...)
			sort.Float64s(sorted)
			out.Latency = LatencySnapshot{
				P50: percentile(sorted, 50),
				P90: percentile(sorted, 90),
				P99: percentile(sorted, 99),
				Max: sorted[len(sorted)-1],
			}
		}
		snap.Requests[route] = out
	}
	return snap
}

// percentile returns the nearest-rank p-th percentile of sorted data.
func percentile(sorted []float64, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100 // ceil(p/100 * n)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
