package server

import (
	"sort"
	"strconv"
	"sync"
	"time"

	"kodan/internal/admission"
	"kodan/internal/telemetry"
)

// Metrics collects the server's ops counters: per-route request counts and
// latency percentiles, cache hit/miss/join counts, transform lifecycle
// counts, and worker-pool gauges. It is exported as JSON by GET /metrics.
//
// Everything except the per-route latency reservoirs lives in a shared
// telemetry.Registry — the same registry the instrumented pipeline layers
// (sim, transform, nn, parallel) record into via the server's base
// context — so /metrics exports the server's own counters and the
// pipeline's per-stage histograms from one collector instead of two
// bookkeeping systems.
type Metrics struct {
	start time.Time
	reg   *telemetry.Registry

	mu     sync.Mutex
	routes map[string]*routeStats
	window int

	transformsStarted   *telemetry.Counter
	transformsCompleted *telemetry.Counter
	transformsCancelled *telemetry.Counter
	transformsFailed    *telemetry.Counter
	transformSeconds    *telemetry.Histogram
	poolWaitSeconds     *telemetry.Histogram
	poolOccupancy       *telemetry.Gauge
	plannerPlans        *telemetry.Counter
	plannerDeferFrac    *telemetry.Histogram
	httpRequests        *telemetry.Counter
	httpErrors          *telemetry.Counter
}

// routeStats accumulates one route's counters and a bounded latency
// reservoir (the most recent window observations).
type routeStats struct {
	count    int64
	byStatus map[int]int64
	lat      []float64 // ring buffer, milliseconds
	n        int       // total observations ever
}

// NewMetrics returns a collector keeping the given number of latency
// samples per route (0 means a 512-sample default), backed by reg (nil
// means a fresh private registry).
func NewMetrics(window int, reg *telemetry.Registry) *Metrics {
	if window <= 0 {
		window = 512
	}
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	scope := reg.Scope("server")
	return &Metrics{
		start:               time.Now(),
		reg:                 reg,
		routes:              make(map[string]*routeStats),
		window:              window,
		transformsStarted:   scope.Counter("transforms.started"),
		transformsCompleted: scope.Counter("transforms.completed"),
		transformsCancelled: scope.Counter("transforms.cancelled"),
		transformsFailed:    scope.Counter("transforms.failed"),
		transformSeconds:    scope.Histogram("transform_seconds"),
		poolWaitSeconds:     scope.Histogram("pool_wait_seconds"),
		poolOccupancy:       scope.Gauge("pool_occupancy"),
		plannerPlans:        scope.Counter("planner.plans"),
		plannerDeferFrac:    scope.Histogram("planner.defer_frac"),
		httpRequests:        scope.Counter("http.requests_total"),
		httpErrors:          scope.Counter("http.errors"),
	}
}

// Registry exposes the shared registry so the server can thread it (as a
// telemetry probe) into the computation contexts.
func (m *Metrics) Registry() *telemetry.Registry { return m.reg }

// Observe records one served request.
func (m *Metrics) Observe(route string, status int, d time.Duration) {
	// Registry-side counters so the flight recorder sees request rate as a
	// time series (the reservoir below only answers point-in-time). The
	// route-agnostic total and the 5xx counter feed the http-errors SLO.
	m.reg.Counter("server.http.requests" + route).Inc()
	m.httpRequests.Inc()
	if status >= 500 {
		m.httpErrors.Inc()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	rs, ok := m.routes[route]
	if !ok {
		rs = &routeStats{byStatus: make(map[int]int64), lat: make([]float64, 0, m.window)}
		m.routes[route] = rs
	}
	rs.count++
	rs.byStatus[status]++
	ms := float64(d) / float64(time.Millisecond)
	if len(rs.lat) < m.window {
		rs.lat = append(rs.lat, ms)
	} else {
		rs.lat[rs.n%m.window] = ms
	}
	rs.n++
}

// Transform lifecycle hooks, called by the server around each underlying
// transformation run. TransformDone folds the outcome counters and the
// stage-duration histogram into one call.
func (m *Metrics) TransformStarted() { m.transformsStarted.Inc() }

// TransformDone records one finished transform: its wall time and the
// outcome (nil = completed, context errors = cancelled, rest = failed).
func (m *Metrics) TransformDone(d time.Duration, outcome error, cancelled bool) {
	m.transformSeconds.Observe(d.Seconds())
	switch {
	case outcome == nil:
		m.transformsCompleted.Inc()
	case cancelled:
		m.transformsCancelled.Inc()
	default:
		m.transformsFailed.Inc()
	}
}

// PlannerPlanned records one served hybrid plan and the deferred fraction
// it chose. Both land in the shared registry, so /metrics and the flight
// recorder see hybrid-planning load and placement mix as time series.
func (m *Metrics) PlannerPlanned(deferFrac float64) {
	m.plannerPlans.Inc()
	m.plannerDeferFrac.Observe(deferFrac)
}

// PoolAcquired records a successful worker-slot acquisition: how long the
// caller waited and the pool occupancy it observed after acquiring.
func (m *Metrics) PoolAcquired(wait time.Duration, inFlight int) {
	m.poolWaitSeconds.Observe(wait.Seconds())
	m.poolOccupancy.Set(int64(inFlight))
}

// LatencySnapshot holds nearest-rank percentiles in milliseconds over the
// route's reservoir, plus how much evidence backs them: Samples is the
// number of observations currently in the reservoir and Window its
// capacity. On a tiny reservoir p99 silently equals the max — readers
// should treat percentiles from a few samples as anecdotes, not tails.
type LatencySnapshot struct {
	P50 float64 `json:"p50Ms"`
	P90 float64 `json:"p90Ms"`
	P99 float64 `json:"p99Ms"`
	Max float64 `json:"maxMs"`
	// Samples is the reservoir's current fill (percentiles are computed
	// over exactly these many recent requests).
	Samples int `json:"samples"`
	// Window is the reservoir capacity (the most recent Window requests
	// are retained).
	Window int `json:"window"`
}

// RouteSnapshot is one route's exported counters.
type RouteSnapshot struct {
	Count    int64            `json:"count"`
	ByStatus map[string]int64 `json:"byStatus"`
	Latency  LatencySnapshot  `json:"latency"`
}

// CacheSnapshot is the cache's exported counters. Shards, Capacity, and
// Evictions are additive fields from the sharded LRU cache; the original
// fields keep their names and meaning.
type CacheSnapshot struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Joins     int64 `json:"singleFlightJoins"`
	Entries   int   `json:"entries"`
	Evictions int64 `json:"evictions"`
	Shards    int   `json:"shards"`
	// Capacity is the completed-entry bound across shards (0 = unbounded).
	Capacity int `json:"capacity"`
}

// TransformSnapshot is the transform lifecycle counters.
type TransformSnapshot struct {
	Started   int64 `json:"started"`
	Completed int64 `json:"completed"`
	Cancelled int64 `json:"cancelled"`
	Failed    int64 `json:"failed"`
}

// Snapshot is the full /metrics document. Telemetry carries the shared
// registry: the server scope (pool occupancy/wait, transform-stage
// histograms) plus per-stage instrumentation from the pipeline layers
// that ran under this server (sim spans' counters, nn fit histograms,
// parallel worker occupancy).
type Snapshot struct {
	UptimeSeconds float64                    `json:"uptimeSeconds"`
	Requests      map[string]RouteSnapshot   `json:"requests"`
	Cache         CacheSnapshot              `json:"cache"`
	Pool          PoolStats                  `json:"pool"`
	Transforms    TransformSnapshot          `json:"transforms"`
	Telemetry     telemetry.RegistrySnapshot `json:"telemetry"`
}

// Snapshot assembles the exported document from the collector plus the
// cache and pool gauges.
func (m *Metrics) Snapshot(cache *Cache, pool *admission.FairPool) Snapshot {
	snap := Snapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Requests:      make(map[string]RouteSnapshot),
		Transforms: TransformSnapshot{
			Started:   m.transformsStarted.Load(),
			Completed: m.transformsCompleted.Load(),
			Cancelled: m.transformsCancelled.Load(),
			Failed:    m.transformsFailed.Load(),
		},
		Telemetry: m.reg.Snapshot(),
	}
	if cache != nil {
		h, mi, j, ev := cache.Stats()
		snap.Cache = CacheSnapshot{
			Hits: h, Misses: mi, Joins: j, Entries: cache.Len(),
			Evictions: ev, Shards: cache.Shards(), Capacity: cache.Capacity(),
		}
	}
	if pool != nil {
		snap.Pool = pool.Stats()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for route, rs := range m.routes {
		out := RouteSnapshot{Count: rs.count, ByStatus: make(map[string]int64)}
		for code, n := range rs.byStatus {
			out.ByStatus[strconv.Itoa(code)] = n
		}
		out.Latency.Window = m.window
		if len(rs.lat) > 0 {
			sorted := append([]float64(nil), rs.lat...)
			sort.Float64s(sorted)
			out.Latency = LatencySnapshot{
				P50:     percentile(sorted, 50),
				P90:     percentile(sorted, 90),
				P99:     percentile(sorted, 99),
				Max:     sorted[len(sorted)-1],
				Samples: len(sorted),
				Window:  m.window,
			}
		}
		snap.Requests[route] = out
	}
	return snap
}

// percentile returns the nearest-rank p-th percentile of sorted data.
func percentile(sorted []float64, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100 // ceil(p/100 * n)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
