package server

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kodan"
)

// TestPlanStormDeterministicBodies hammers /v1/plan from many goroutines
// across several apps and checks the server's three concurrency
// contracts at once: no more transforms run at a time than the pool has
// workers, every 200 response for the same app is byte-identical (cache
// hits, joins, and fresh computes must all serve the same bundle), and
// the underlying Transform runs exactly once per app.
func TestPlanStormDeterministicBodies(t *testing.T) {
	var cur, peak, calls atomic.Int64
	cfg := testConfig()
	cfg.Workers = 2
	cfg.QueueDepth = 16
	cfg.Transform = func(ctx context.Context, sys *kodan.System, appIndex int, quantized bool) (*kodan.Application, error) {
		calls.Add(1)
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		defer cur.Add(-1)
		time.Sleep(10 * time.Millisecond) // hold the slot so overlap is observable
		return sys.TransformVariantCtx(ctx, appIndex, quantized)
	}
	s := New(cfg)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	apps := []int{1, 2, 3}
	const perApp = 8
	type result struct {
		app  int
		code int
		body []byte
	}
	results := make([]result, len(apps)*perApp)
	var wg sync.WaitGroup
	for ai, app := range apps {
		for j := 0; j < perApp; j++ {
			wg.Add(1)
			go func(slot, app int) {
				defer wg.Done()
				resp, data := post(t, ts.Client(), ts.URL+"/v1/plan", planBody(app))
				results[slot] = result{app: app, code: resp.StatusCode, body: data}
			}(ai*perApp+j, app)
		}
	}
	wg.Wait()

	first := map[int][]byte{}
	for i, r := range results {
		if r.code != http.StatusOK {
			t.Fatalf("request %d (app %d): status %d (%s)", i, r.app, r.code, r.body)
		}
		if ref, ok := first[r.app]; !ok {
			first[r.app] = r.body
		} else if !bytes.Equal(r.body, ref) {
			t.Fatalf("app %d: response bodies differ across concurrent requests", r.app)
		}
	}
	if p := peak.Load(); p > int64(cfg.Workers) {
		t.Errorf("peak concurrent transforms %d exceeds %d workers", p, cfg.Workers)
	}
	if got := calls.Load(); got != int64(len(apps)) {
		t.Errorf("Transform ran %d times for %d apps, want one single-flight run each", got, len(apps))
	}

	// After the storm every app is cached: a repeat is a byte-identical hit.
	for _, app := range apps {
		resp, data := post(t, ts.Client(), ts.URL+"/v1/plan", planBody(app))
		if resp.StatusCode != http.StatusOK || !bytes.Equal(data, first[app]) {
			t.Fatalf("app %d: cached replay differs (status %d)", app, resp.StatusCode)
		}
		if got := resp.Header.Get("X-Kodan-Cache"); got != "hit" {
			t.Errorf("app %d: replay cache source %q, want hit", app, got)
		}
	}
}

// TestSaturationStormRetryAfter saturates a 1-worker, 1-slot pool with
// distinct-app requests and checks that every rejected request — not just
// the first — carries a 429 with a Retry-After header, while the admitted
// ones still complete.
func TestSaturationStormRetryAfter(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	cfg.QueueDepth = 1
	cfg.Transform = func(ctx context.Context, _ *kodan.System, _ int, _ bool) (*kodan.Application, error) {
		<-ctx.Done() // block until the request timeout fires
		return nil, ctx.Err()
	}
	s := New(cfg)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	blocker := func(app int) string {
		return fmt.Sprintf(`{"app":%d,"target":"orin","deadlineMs":24000,"capacityFrac":0.21,"timeoutMs":1500}`, app)
	}

	// Fill the worker and the queue slot deterministically.
	var wg sync.WaitGroup
	for _, app := range []int{1, 2} {
		wg.Add(1)
		go func(app int) {
			defer wg.Done()
			post(t, ts.Client(), ts.URL+"/v1/plan", blocker(app))
		}(app)
	}
	waitFor(t, 5*time.Second, "pool to fill", func() bool {
		snap := s.Metrics()
		return snap.Pool.InFlight == 1 && snap.Pool.Queued == 1
	})

	// The storm: every one of these distinct apps must bounce with 429 +
	// Retry-After, since both slots stay occupied until the timeouts.
	const stormN = 4
	codes := make([]int, stormN)
	retryAfter := make([]string, stormN)
	var storm sync.WaitGroup
	for i := 0; i < stormN; i++ {
		storm.Add(1)
		go func(i int) {
			defer storm.Done()
			resp, _ := post(t, ts.Client(), ts.URL+"/v1/plan", blocker(3+i))
			codes[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
		}(i)
	}
	storm.Wait()

	for i := 0; i < stormN; i++ {
		if codes[i] != http.StatusTooManyRequests {
			t.Errorf("storm request %d: status %d, want 429", i, codes[i])
		}
		if retryAfter[i] == "" {
			t.Errorf("storm request %d: 429 without Retry-After", i)
		}
	}
	wg.Wait()
	if got := s.Metrics().Pool.Rejected; got != stormN {
		t.Errorf("pool rejected = %d, want %d", got, stormN)
	}
}

// TestGracefulDrainMultipleInFlight shuts the server down while two
// requests occupy both workers and checks that both complete with valid
// bundles before Shutdown returns.
func TestGracefulDrainMultipleInFlight(t *testing.T) {
	release := make(chan struct{})
	var done atomic.Int64
	cfg := testConfig()
	cfg.Transform = func(ctx context.Context, sys *kodan.System, appIndex int, quantized bool) (*kodan.Application, error) {
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		app, err := sys.TransformVariantCtx(ctx, appIndex, quantized)
		done.Add(1)
		return app, err
	}
	s := New(cfg)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()
	url := "http://" + l.Addr().String()

	type result struct {
		code int
		body []byte
	}
	resCh := make(chan result, 2)
	for _, app := range []int{5, 6} {
		go func(app int) {
			resp, err := http.Post(url+"/v1/plan", "application/json", strings.NewReader(planBody(app)))
			if err != nil {
				resCh <- result{code: -1, body: []byte(err.Error())}
				return
			}
			defer resp.Body.Close()
			data, _ := io.ReadAll(resp.Body)
			resCh <- result{code: resp.StatusCode, body: data}
		}(app)
	}
	waitFor(t, 5*time.Second, "both requests in flight", func() bool {
		return s.Metrics().Pool.InFlight == 2
	})

	shutdownRet := make(chan struct{})
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		close(shutdownRet)
	}()
	waitFor(t, 5*time.Second, "listener to close", func() bool {
		_, err := net.DialTimeout("tcp", l.Addr().String(), 50*time.Millisecond)
		return err != nil
	})
	close(release)

	for i := 0; i < 2; i++ {
		res := <-resCh
		if res.code != http.StatusOK {
			t.Fatalf("drained request %d: status %d (%s)", i, res.code, res.body)
		}
		if _, err := kodan.ImportSelection(bytes.NewReader(res.body)); err != nil {
			t.Fatalf("drained request %d: invalid bundle: %v", i, err)
		}
	}
	<-shutdownRet
	if got := done.Load(); got != 2 {
		t.Errorf("completed transforms = %d, want 2", got)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Fatalf("serve returned %v, want ErrServerClosed", err)
	}
}
