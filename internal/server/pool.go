package server

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrSaturated is returned by Pool.Acquire when every worker slot is busy
// and the wait queue is full. HTTP handlers translate it into
// 429 Too Many Requests with a Retry-After header.
var ErrSaturated = errors.New("server: worker pool saturated")

// Pool is a bounded worker pool with an explicitly bounded wait queue —
// the server's backpressure mechanism for seconds-expensive transforms.
// At most Workers computations run concurrently; at most QueueDepth more
// may wait for a slot; beyond that, Acquire fails fast with ErrSaturated
// instead of letting latency grow without bound.
type Pool struct {
	slots    chan struct{}
	depth    int
	waiting  atomic.Int64
	rejected atomic.Int64
}

// NewPool returns a pool with the given worker count and queue depth.
// Non-positive values fall back to 1 worker / 0 queued.
func NewPool(workers, queueDepth int) *Pool {
	if workers <= 0 {
		workers = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &Pool{slots: make(chan struct{}, workers), depth: queueDepth}
}

// Acquire claims a worker slot, waiting in the queue if all slots are
// busy. It returns ErrSaturated immediately when the queue is full, or
// ctx.Err() if the caller's context ends while queued. Every successful
// Acquire must be paired with Release.
func (p *Pool) Acquire(ctx context.Context) error {
	select {
	case p.slots <- struct{}{}:
		return nil
	default:
	}
	if p.waiting.Add(1) > int64(p.depth) {
		p.waiting.Add(-1)
		p.rejected.Add(1)
		return ErrSaturated
	}
	defer p.waiting.Add(-1)
	select {
	case p.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns a slot claimed by Acquire.
func (p *Pool) Release() { <-p.slots }

// PoolStats is a point-in-time snapshot for the metrics endpoint.
type PoolStats struct {
	Workers    int   `json:"workers"`
	QueueDepth int   `json:"queueDepth"`
	InFlight   int   `json:"inFlight"`
	Queued     int   `json:"queued"`
	Rejected   int64 `json:"rejected"`
}

// Stats snapshots the pool.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Workers:    cap(p.slots),
		QueueDepth: p.depth,
		InFlight:   len(p.slots),
		Queued:     int(p.waiting.Load()),
		Rejected:   p.rejected.Load(),
	}
}
