package server

import "kodan/internal/admission"

// The server's worker pool is the weighted-fair pool in
// internal/admission: at most Workers transforms run concurrently, each
// tenant queues up to QueueDepth waiters, and freed slots go to the
// queued tenant with the smallest virtual finish tag. With a single
// tenant (all-anonymous traffic) it behaves exactly like the original
// FIFO-bounded pool. The aliases keep the server's historical names.

// ErrSaturated is returned by the pool when every worker slot is busy and
// the caller's tenant queue is full; handlers translate it into 429 Too
// Many Requests with a Retry-After header.
var ErrSaturated = admission.ErrSaturated

// PoolStats is the pool's point-in-time snapshot for /metrics.
type PoolStats = admission.PoolStats
