package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"kodan"
	"kodan/internal/fault"
	"kodan/internal/telemetry"
)

// ErrBreakerOpen reports that the circuit breaker is rejecting expensive
// work because recent attempts kept failing. Clients get 503 with a
// Retry-After covering the breaker's cooldown.
var ErrBreakerOpen = errors.New("server: circuit breaker open")

// breakerState is the classic three-state machine.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// Breaker is a mutex-guarded circuit breaker over the transform path.
// Consecutive failures at or above the threshold open it; after the
// cooldown one probe request is admitted (half-open), and its outcome
// either closes the breaker or re-opens it for another cooldown.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	state    breakerState
	failures int
	openedAt time.Time
	probing  bool
}

// NewBreaker builds a breaker; threshold <= 0 disables it (Allow always
// admits, Record is a no-op).
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		return nil
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Cooldown returns the configured cooldown (zero on a nil breaker).
func (b *Breaker) Cooldown() time.Duration {
	if b == nil {
		return 0
	}
	return b.cooldown
}

// Allow reports whether a request may proceed. In the open state it flips
// to half-open once the cooldown has elapsed and admits exactly one probe.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open: one probe at a time
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Record feeds an attempt's outcome back. Returns true when this record
// tripped the breaker closed→open (so the caller can count trips once).
func (b *Breaker) Record(success bool) (tripped, recovered bool) {
	if b == nil {
		return false, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if success {
		recovered = b.state != breakerClosed
		b.state = breakerClosed
		b.failures = 0
		b.probing = false
		return false, recovered
	}
	switch b.state {
	case breakerHalfOpen:
		// The probe failed: back to a full cooldown.
		b.state = breakerOpen
		b.openedAt = b.now()
		b.probing = false
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.state = breakerOpen
			b.openedAt = b.now()
			return true, false
		}
	}
	return false, false
}

// State returns the current state name (for tests and debugging).
func (b *Breaker) State() string {
	if b == nil {
		return "disabled"
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// transient reports whether an error is worth retrying: injected chaos
// failures are, cancellations and real pipeline errors are not.
func transient(err error) bool {
	return errors.Is(err, fault.ErrInjected)
}

// resilientTransform wraps the configured transform with the chaos
// striker, bounded exponential-backoff retry for transient failures, and
// the circuit breaker. The wrapper is installed unconditionally but is
// pass-through in the default configuration: no chaos means no injected
// faults, and a healthy transform never accumulates breaker failures.
func (s *Server) resilientTransform(base TransformFunc) TransformFunc {
	return func(ctx context.Context, sys *kodan.System, appIndex int, quantized bool) (*kodan.Application, error) {
		scope := s.metrics.Registry().Scope("server.resilience")
		backoff := s.cfg.RetryBackoff
		var err error
		for attempt := 1; ; attempt++ {
			if !s.breaker.Allow() {
				scope.Counter("breaker_rejected").Inc()
				return nil, ErrBreakerOpen
			}
			var app *kodan.Application
			app, err = s.strikeAndRun(ctx, base, sys, appIndex, quantized, scope)
			if err == nil {
				_, recovered := s.breaker.Record(true)
				if recovered {
					scope.Counter("breaker_recovered").Inc()
				}
				if attempt > 1 {
					scope.Counter("retry_success").Inc()
				}
				return app, nil
			}
			// Cancellation is the caller's doing, not the pipeline's health.
			if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
				if tripped, _ := s.breaker.Record(false); tripped {
					scope.Counter("breaker_tripped").Inc()
					s.logger.Warn("circuit breaker opened",
						"route", "transform", "cooldown", s.breaker.Cooldown().String())
				}
			}
			if !transient(err) || attempt >= s.retryAttempts() {
				return nil, err
			}
			scope.Counter("retries").Inc()
			_, sp := telemetry.StartSpan(ctx, "server.retry_backoff")
			sp.Set("attempt", fmt.Sprint(attempt))
			waitErr := sleepCtx(ctx, backoff)
			sp.End()
			if waitErr != nil {
				return nil, waitErr
			}
			backoff *= 2
		}
	}
}

// strikeAndRun consults the chaos striker, then runs the real transform.
func (s *Server) strikeAndRun(ctx context.Context, base TransformFunc, sys *kodan.System, appIndex int, quantized bool, scope *telemetry.Scope) (*kodan.Application, error) {
	st := s.cfg.Chaos.Next()
	if st.Delay > 0 {
		scope.Counter("delayed").Inc()
		if err := sleepCtx(ctx, st.Delay); err != nil {
			return nil, err
		}
	}
	if st.Fail {
		scope.Counter("injected").Inc()
		return nil, fault.ErrInjected
	}
	return base(ctx, sys, appIndex, quantized)
}

// retryAttempts resolves the configured attempt budget: 0 means the
// default of 3 total attempts, negative disables retry entirely.
func (s *Server) retryAttempts() int {
	switch {
	case s.cfg.RetryAttempts < 0:
		return 1
	case s.cfg.RetryAttempts == 0:
		return 3
	default:
		return s.cfg.RetryAttempts
	}
}

// sleepCtx sleeps for d or until the context is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
