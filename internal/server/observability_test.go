package server

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"kodan"
	"kodan/internal/telemetry"
)

// syncBuffer is a bytes.Buffer safe for the concurrent writes slog
// performs from handler goroutines.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRequestIDCorrelation is the cross-stream acceptance check: one
// /v1/plan request's ID — minted by the middleware and echoed in
// X-Request-ID — appears in both the structured request log and the JSONL
// span trace, on the spans of the work the request triggered (pool wait,
// transform), not just the HTTP span.
func TestRequestIDCorrelation(t *testing.T) {
	logBuf := &syncBuffer{}
	tracer := telemetry.NewTracer(0)
	cfg := testConfig()
	cfg.Logger = newJSONLogger(logBuf)
	cfg.Tracer = tracer

	s := New(cfg)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := post(t, ts.Client(), ts.URL+"/v1/plan", planBody(4))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan: status %d (%s)", resp.StatusCode, body)
	}
	reqID := resp.Header.Get("X-Request-ID")
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(reqID) {
		t.Fatalf("X-Request-ID = %q, want a minted 16-hex-char ID", reqID)
	}

	// The request log record is written in a deferred block that races
	// with the response reaching the client; poll for it.
	waitFor(t, 5*time.Second, "request slog record", func() bool {
		return findLogRecord(logBuf.String(), reqID, "/v1/plan")
	})

	// The trace must carry the same ID on the spans of the triggered work.
	var traceBuf bytes.Buffer
	if err := tracer.WriteJSONL(&traceBuf); err != nil {
		t.Fatal(err)
	}
	spans := spansWithRequestID(t, traceBuf.Bytes(), reqID)
	for _, want := range []string{"http./v1/plan", "server.pool_wait", "server.transform"} {
		if !spans[want] {
			t.Errorf("span %q does not carry %s=%s (got %v)", want, telemetry.RequestIDAttr, reqID, spans)
		}
	}
}

// TestRequestIDClientSupplied: a well-formed inbound X-Request-ID is
// reused and echoed; a malformed one (log-injection shaped) is replaced
// with a freshly minted ID.
func TestRequestIDClientSupplied(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	do := func(id string) string {
		req, err := http.NewRequest("GET", ts.URL+"/healthz", nil)
		if err != nil {
			t.Fatal(err)
		}
		if id != "" {
			req.Header.Set("X-Request-ID", id)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.Header.Get("X-Request-ID")
	}

	if got := do("trace-me_42.a"); got != "trace-me_42.a" {
		t.Errorf("well-formed client ID not echoed: got %q", got)
	}
	minted := regexp.MustCompile(`^[0-9a-f]{16}$`)
	// (Newlines never reach the pattern — net/http rejects them client- and
	// server-side — so the malformed cases are printable-but-unsafe shapes.)
	for _, bad := range []string{"has spaces", "semi;colon", strings.Repeat("x", 65), "héllo"} {
		if got := do(bad); !minted.MatchString(got) {
			t.Errorf("malformed ID %q was not replaced with a minted one (got %q)", bad, got)
		}
	}
	if got := do(""); !minted.MatchString(got) {
		t.Errorf("absent ID not minted: got %q", got)
	}
}

// TestHealthzLiveDuringDrain is the drain-semantics satellite: while a
// graceful shutdown drains an in-flight /v1/plan, /healthz (liveness)
// keeps answering 200 and /readyz (readiness) flips to 503 — probed over
// a second listener, mirroring production's separate debug/ops listener —
// and the in-flight request still completes with its request ID echoed.
func TestHealthzLiveDuringDrain(t *testing.T) {
	release := make(chan struct{})
	cfg := testConfig()
	cfg.Transform = func(ctx context.Context, sys *kodan.System, appIndex int, quantized bool) (*kodan.Application, error) {
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return sys.TransformVariantCtx(ctx, appIndex, quantized)
	}
	s := New(cfg)

	// Main listener: drained by Shutdown.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()
	mainURL := "http://" + l.Addr().String()

	// Ops listener: same handler, not shut down, so probes stay reachable
	// while the main listener refuses new connections.
	opsListener, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	opsSrv := &http.Server{Handler: s.Handler()}
	go opsSrv.Serve(opsListener)
	defer opsSrv.Close()
	opsURL := "http://" + opsListener.Addr().String()

	probe := func(path string) int {
		resp, err := http.Get(opsURL + path)
		if err != nil {
			return -1
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := probe("/readyz"); got != http.StatusOK {
		t.Fatalf("/readyz before drain: %d, want 200", got)
	}

	// In-flight plan with a client-chosen request ID.
	const clientID = "drain-test-1"
	type result struct {
		code  int
		reqID string
	}
	resCh := make(chan result, 1)
	go func() {
		req, err := http.NewRequest("POST", mainURL+"/v1/plan", strings.NewReader(planBody(5)))
		if err != nil {
			resCh <- result{code: -1}
			return
		}
		req.Header.Set("X-Request-ID", clientID)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			resCh <- result{code: -1}
			return
		}
		defer resp.Body.Close()
		resCh <- result{code: resp.StatusCode, reqID: resp.Header.Get("X-Request-ID")}
	}()
	waitFor(t, 10*time.Second, "request in flight", func() bool {
		return s.Metrics().Pool.InFlight == 1
	})

	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	// During the drain: readiness down, liveness up — several probes, not
	// one, so a flapping implementation fails.
	waitFor(t, 5*time.Second, "readyz to flip 503", func() bool {
		return probe("/readyz") == http.StatusServiceUnavailable
	})
	for i := 0; i < 3; i++ {
		if got := probe("/healthz"); got != http.StatusOK {
			t.Fatalf("/healthz during drain: %d, want 200", got)
		}
		if got := probe("/readyz"); got != http.StatusServiceUnavailable {
			t.Fatalf("/readyz during drain: %d, want 503", got)
		}
	}

	close(release)
	res := <-resCh
	if res.code != http.StatusOK {
		t.Fatalf("in-flight request during drain: status %d, want 200", res.code)
	}
	if res.reqID != clientID {
		t.Fatalf("in-flight request X-Request-ID = %q, want %q echoed", res.reqID, clientID)
	}
	<-shutdownDone
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Fatalf("serve returned %v, want ErrServerClosed", err)
	}
}

// TestLatencyReservoirPastWindow pins the per-route reservoir's behavior
// past its window: it holds exactly the most recent window observations
// (oldest overwritten in ring order), while the request count keeps the
// full total.
func TestLatencyReservoirPastWindow(t *testing.T) {
	m := NewMetrics(4, nil)
	for i := 1; i <= 10; i++ {
		m.Observe("/x", 200, time.Duration(i)*time.Millisecond)
	}
	snap := m.Snapshot(nil, nil)
	rs := snap.Requests["/x"]
	if rs.Count != 10 {
		t.Errorf("count = %d, want 10 (reservoir must not cap the counter)", rs.Count)
	}
	lat := rs.Latency
	if lat.Samples != 4 || lat.Window != 4 {
		t.Errorf("samples/window = %d/%d, want 4/4", lat.Samples, lat.Window)
	}
	// The retained set is {7,8,9,10} ms: the 1..6ms observations fell out.
	if lat.Max != 10 {
		t.Errorf("max = %v, want 10 (most recent)", lat.Max)
	}
	if lat.P50 < 7 {
		t.Errorf("p50 = %v, want >= 7 (old fast samples must be evicted)", lat.P50)
	}
	if lat.P99 != 10 {
		t.Errorf("p99 = %v, want 10", lat.P99)
	}
}

// findLogRecord reports whether the JSON slog stream contains a "request"
// record for route carrying the request ID.
func findLogRecord(logs, reqID, route string) bool {
	for _, line := range strings.Split(strings.TrimSpace(logs), "\n") {
		var rec map[string]interface{}
		if json.Unmarshal([]byte(line), &rec) != nil {
			continue
		}
		if rec["msg"] == "request" && rec[telemetry.RequestIDAttr] == reqID && rec["route"] == route {
			return true
		}
	}
	return false
}

// spansWithRequestID joins begin events (names) to end events (attrs) and
// returns the set of span names annotated with reqID.
func spansWithRequestID(t *testing.T, jsonl []byte, reqID string) map[string]bool {
	t.Helper()
	names := make(map[int64]string)
	out := make(map[string]bool)
	for _, line := range bytes.Split(bytes.TrimSpace(jsonl), []byte("\n")) {
		var ev struct {
			Ev    string            `json:"ev"`
			ID    int64             `json:"id"`
			Name  string            `json:"name"`
			Attrs map[string]string `json:"attrs"`
		}
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		switch ev.Ev {
		case "b":
			names[ev.ID] = ev.Name
		case "e":
			if ev.Attrs[telemetry.RequestIDAttr] == reqID {
				out[names[ev.ID]] = true
			}
		}
	}
	return out
}

// newJSONLogger builds a JSON slog.Logger writing to w.
func newJSONLogger(w *syncBuffer) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, nil))
}
