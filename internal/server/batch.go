package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"kodan"
	"kodan/internal/telemetry"
)

// batcher coalesces concurrent cache-miss transforms that share a
// transformation workspace — same (seed, inference variant) — into one
// batched pipeline pass through a single worker slot. Each member is the
// single-flight leader for its own cache key, so batching composes with
// the cache: members' results land in their entries and every joined or
// repeated request is served from there, byte-identical to the unbatched
// path.
//
// A group flushes when it reaches BatchMax members or BatchWindow after
// its first member arrived, whichever comes first. The window is the
// latency the first member pays to buy amortization: one model-load and
// one pipeline pass (PredictBatch inside) instead of N.
//
// Cancellation is reference-counted like the cache's: each member detaches
// when its own waiters are gone, and when the last member detaches the
// group's computation is cancelled.
type batcher struct {
	s      *Server
	window time.Duration
	max    int

	flushes *telemetry.Counter   // batched passes run
	batched *telemetry.Counter   // member transforms coalesced
	size    *telemetry.Histogram // members per flush

	mu     sync.Mutex
	groups map[string]*batchGroup
}

type batchGroup struct {
	key       string
	seed      uint64
	quantized bool
	tenant    string // first member's tenant pays the pool wait
	ctx       context.Context
	cancel    context.CancelFunc
	members   []*batchMember
	leaders   int // members with live waiters; last detach cancels ctx
	flushed   bool
	timer     *time.Timer
}

type batchMember struct {
	appIndex int
	done     chan struct{}
	app      *kodan.Application
	err      error
}

func newBatcher(s *Server, window time.Duration, max int) *batcher {
	scope := s.metrics.Registry().Scope("server.batch")
	return &batcher{
		s:       s,
		window:  window,
		max:     max,
		flushes: scope.Counter("flushes"),
		batched: scope.Counter("batched"),
		size:    scope.Histogram("size"),
		groups:  make(map[string]*batchGroup),
	}
}

// submit enrolls one cache-miss transform in its workspace's group and
// waits for the batched result. ctx is the member's computation context
// (the cache entry's, detached from any single request); when it ends the
// member detaches and the group continues for the remaining members.
func (b *batcher) submit(ctx context.Context, tenant string, seed uint64, appIndex int, quantized bool) (interface{}, error) {
	key := fmt.Sprintf("%d|%t", seed, quantized)
	m := &batchMember{appIndex: appIndex, done: make(chan struct{})}

	b.mu.Lock()
	g := b.groups[key]
	if g == nil {
		gctx, cancel := context.WithCancel(b.s.baseCtx)
		// The batched pass belongs to every member; keep the first
		// member's identity for spans and logs like the cache does.
		gctx = telemetry.PropagateTelemetry(ctx, gctx)
		g = &batchGroup{key: key, seed: seed, quantized: quantized, tenant: tenant, ctx: gctx, cancel: cancel}
		b.groups[key] = g
		g.timer = time.AfterFunc(b.window, func() { b.flush(g) })
	}
	g.members = append(g.members, m)
	g.leaders++
	b.batched.Inc()
	full := len(g.members) >= b.max
	b.mu.Unlock()
	if full {
		b.flush(g)
	}

	select {
	case <-m.done:
		return m.app, m.err
	case <-ctx.Done():
		b.detach(g)
		return nil, ctx.Err()
	}
}

// detach drops one member's interest; the last detach cancels the group's
// computation (already-flushed groups notice via their context).
func (b *batcher) detach(g *batchGroup) {
	b.mu.Lock()
	g.leaders--
	last := g.leaders == 0
	b.mu.Unlock()
	if last {
		g.cancel()
	}
}

// flush closes the group to new members and runs the batched pass.
func (b *batcher) flush(g *batchGroup) {
	b.mu.Lock()
	if g.flushed {
		b.mu.Unlock()
		return
	}
	g.flushed = true
	g.timer.Stop()
	delete(b.groups, g.key)
	members := append([]*batchMember(nil), g.members...)
	b.mu.Unlock()
	go b.run(g, members)
}

// run executes one batched pass: one worker slot, one workspace build, one
// TransformBatch over every member's app index, results distributed to the
// members' cache entries.
func (b *batcher) run(g *batchGroup, members []*batchMember) {
	defer g.cancel()
	finish := func(err error, apps []*kodan.Application) {
		for i, m := range members {
			if err == nil {
				m.app = apps[i]
			}
			m.err = err
			close(m.done)
		}
	}

	s := b.s
	sys, err := s.acquireAndBuild(g.ctx, g.tenant, g.seed)
	if err != nil {
		finish(err, nil)
		return
	}
	defer s.pool.Release()

	indexes := make([]int, len(members))
	for i, m := range members {
		indexes[i] = m.appIndex
		s.metrics.TransformStarted()
	}
	b.flushes.Inc()
	b.size.Observe(float64(len(members)))

	start := time.Now()
	tctx, sp := telemetry.StartSpan(g.ctx, "server.transform_batch")
	sp.Set("size", fmt.Sprint(len(members)))
	sp.Set("quantized", fmt.Sprint(g.quantized))
	apps, err := s.cfg.TransformBatch(tctx, sys, indexes, g.quantized)
	sp.End()
	if err == nil && len(apps) != len(indexes) {
		err = fmt.Errorf("transform batch returned %d results for %d requests", len(apps), len(indexes))
	}
	// Lifecycle accounting: each member is one transform whose cost is its
	// share of the batched pass.
	share := time.Duration(int64(time.Since(start)) / int64(len(members)))
	cancelled := errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
	for range members {
		s.metrics.TransformDone(share, err, cancelled)
	}
	finish(err, apps)
}
