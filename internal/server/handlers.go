package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strings"
	"time"

	"kodan"
	"kodan/internal/fault"
	"kodan/internal/planner"
	"kodan/internal/sim"
	"kodan/internal/telemetry"
)

// planRequest is the /v1/plan and /v1/transform request body (transform
// ignores the deployment fields) and the deployment half of /v1/simulate.
type planRequest struct {
	// Seed selects the transformation seed (0 means the server default).
	Seed uint64 `json:"seed"`
	// App is the 1-based Table 1 application index.
	App int `json:"app"`
	// Target names the hardware target: "orin", "i7", "1070ti" (or the
	// Table 1 display names).
	Target string `json:"target"`
	// DeadlineMs and CapacityFrac pin the deployment environment. When
	// either is zero the server fills both from the reference Landsat 8
	// mission (one day, one satellite).
	DeadlineMs   float64 `json:"deadlineMs"`
	CapacityFrac float64 `json:"capacityFrac"`
	// NoFill disables padding an under-filled link with raw frames
	// (FillIdle defaults to true, matching Mission.Deployment).
	NoFill bool `json:"noFill"`
	// Quantized selects the int8 per-layer-quantized inference variant for
	// the transformation (the models behind plans and simulations inherit
	// it; float and quantized artifacts are cached independently).
	Quantized bool `json:"quantized"`
	// TimeoutMs caps this request's processing time below the server's
	// ceiling.
	TimeoutMs int `json:"timeoutMs"`
	// Mode selects the /v1/plan artifact: "" or "bundle" returns the
	// deployment bundle; "hybrid" runs the space-ground execution planner
	// and returns per-context placements.
	Mode string `json:"mode"`
	// GroundCost overrides the hybrid planner's ground-compute price per
	// frame-fraction (nil = the default cost vector; 0 = free ground).
	GroundCost *float64 `json:"groundCost"`
	// BufferFrames overrides the hybrid deferral buffer in frame-size
	// units (nil = 64; 0 disables deferral).
	BufferFrames *float64 `json:"bufferFrames"`
	// ContactGapFrames pins the mean frames between downlink contacts for
	// hybrid planning. When 0 the server derives it from the reference
	// mission simulation.
	ContactGapFrames float64 `json:"contactGapFrames"`
}

// simulateRequest is the /v1/simulate request body.
type simulateRequest struct {
	planRequest
	// Days is the simulated span (default 1).
	Days int `json:"days"`
	// Sats is the constellation population (default 1).
	Sats int `json:"sats"`
	// Mode picks the deployment under test: "kodan" (default),
	// "bentpipe", or "direct".
	Mode string `json:"mode"`
}

// requestContext applies the server and per-request timeouts.
func (s *Server) requestContext(r *http.Request, req planRequest) (context.Context, context.CancelFunc) {
	timeout := s.cfg.Timeout
	if req.TimeoutMs > 0 && time.Duration(req.TimeoutMs)*time.Millisecond < timeout {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	return context.WithTimeout(r.Context(), timeout)
}

// decode parses a JSON body strictly.
func decode(r *http.Request, v interface{}) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// writeJSON writes v as indented JSON.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the connection owns delivery
}

// errorBody is the uniform error document: every 4xx/5xx response is
// {"error": "..."} with an application/json content type.
type errorBody struct {
	Error string `json:"error"`
}

// writeJSONError writes the uniform JSON error body.
func writeJSONError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorBody{Error: msg})
}

// retryAfter renders a Retry-After value covering d plus the server's
// seeded jitter (0..RetryAfterJitterMax seconds), so rejected clients
// retry spread out instead of as a synchronized herd. Without configured
// jitter the value is exact.
func (s *Server) retryAfter(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprint(secs + s.jitter.seconds())
}

// writeError maps pipeline errors onto HTTP statuses.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrSaturated):
		w.Header().Set("Retry-After", s.retryAfter(time.Second))
		writeJSONError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrBreakerOpen):
		w.Header().Set("Retry-After", s.retryAfter(s.breaker.Cooldown()))
		writeJSONError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, fault.ErrInjected):
		// Transient failures survived the retry budget: the client may
		// try again shortly.
		w.Header().Set("Retry-After", s.retryAfter(time.Second))
		writeJSONError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		writeJSONError(w, http.StatusGatewayTimeout, "deadline exceeded")
	case errors.Is(err, context.Canceled):
		// Client went away or the server is shutting down.
		writeJSONError(w, http.StatusServiceUnavailable, "request cancelled")
	default:
		writeJSONError(w, http.StatusInternalServerError, err.Error())
	}
}

// parseTarget accepts the CLI short names and the Table 1 display names.
func parseTarget(s string) (kodan.Target, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "1070ti", "gtx1070ti", "1070 ti":
		return kodan.GTX1070Ti, nil
	case "i7", "i7-7800", "i7_7800x":
		return kodan.I7_7800X, nil
	case "orin", "orin15w", "orin 15w", "":
		return kodan.Orin15W, nil
	default:
		return 0, fmt.Errorf("unknown target %q (want 1070ti, i7, or orin)", s)
	}
}

// seedOf resolves a request seed against the server default.
func (s *Server) seedOf(req planRequest) uint64 {
	if req.Seed != 0 {
		return req.Seed
	}
	return s.cfg.Seed
}

// system returns (building at most once per seed) the transformation
// workspace for a seed.
func (s *Server) system(ctx context.Context, seed uint64) (*kodan.System, CacheSource, error) {
	key := fmt.Sprintf("sys|%d", seed)
	v, src, err := s.cache.Do(ctx, key, func(cctx context.Context) (interface{}, error) {
		return s.cfg.NewSystem(cctx, s.cfg.TransformConfig(seed))
	})
	if err != nil {
		return nil, src, err
	}
	return v.(*kodan.System), src, nil
}

// application returns (computing at most once per key, through the worker
// pool) the transformed application for (seed, app, inference variant).
// tenant attributes the pool wait to the caller's fair queue; when
// batching is enabled, the cache-miss leader coalesces with concurrent
// same-(seed, variant) misses instead of transforming alone.
func (s *Server) application(ctx context.Context, tenant string, seed uint64, appIndex int, quantized bool) (*kodan.Application, CacheSource, error) {
	key := fmt.Sprintf("app|%d|%d|%t", seed, appIndex, quantized)
	v, src, err := s.cache.Do(ctx, key, func(cctx context.Context) (interface{}, error) {
		if s.batcher != nil {
			return s.batcher.submit(cctx, tenant, seed, appIndex, quantized)
		}
		sys, err := s.acquireAndBuild(cctx, tenant, seed)
		if err != nil {
			return nil, err
		}
		defer s.pool.Release()
		s.metrics.TransformStarted()
		start := time.Now()
		tctx, trSp := telemetry.StartSpan(cctx, "server.transform")
		trSp.Set("app", fmt.Sprint(appIndex))
		trSp.Set("quantized", fmt.Sprint(quantized))
		app, err := s.cfg.Transform(tctx, sys, appIndex, quantized)
		trSp.End()
		cancelled := errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
		s.metrics.TransformDone(time.Since(start), err, cancelled)
		return app, err
	})
	if err != nil {
		return nil, src, err
	}
	return v.(*kodan.Application), src, nil
}

// acquireAndBuild claims a worker slot on tenant's behalf and resolves the
// seed's workspace. On success the caller owns the slot (pair with
// s.pool.Release); on error the slot is already returned.
func (s *Server) acquireAndBuild(ctx context.Context, tenant string, seed uint64) (*kodan.System, error) {
	enqueued := time.Now()
	_, waitSp := telemetry.StartSpan(ctx, "server.pool_wait")
	err := s.pool.Acquire(ctx, tenant)
	waitSp.End()
	s.tenants.QueueDepth(tenant, s.pool.QueueDepthOf(tenant))
	if err != nil {
		if errors.Is(err, ErrSaturated) {
			s.tenants.Rejected(tenant)
		}
		return nil, err
	}
	s.metrics.PoolAcquired(time.Since(enqueued), s.pool.Stats().InFlight)
	sys, _, err := s.system(ctx, seed)
	if err != nil {
		s.pool.Release()
		return nil, err
	}
	return sys, nil
}

// mission returns the reference mission parameters for a span and
// constellation size, derived from the orbital simulator (cached: the
// simulation is deterministic but takes on the order of a second).
func (s *Server) mission(ctx context.Context, days, sats int) (kodan.Mission, error) {
	if days <= 0 {
		days = 1
	}
	if sats <= 0 {
		sats = 1
	}
	key := fmt.Sprintf("sim|%d|%d", days, sats)
	v, _, err := s.cache.Do(ctx, key, func(cctx context.Context) (interface{}, error) {
		cfg := sim.Landsat8Config(s.cfg.SimEpoch, time.Duration(days)*24*time.Hour, sats)
		res, err := sim.RunCtx(cctx, cfg)
		if err != nil {
			return nil, err
		}
		observed := float64(res.FramesObserved())
		if observed == 0 {
			return nil, fmt.Errorf("simulation observed no frames")
		}
		return kodan.Mission{
			Epoch:            s.cfg.SimEpoch,
			FrameDeadline:    cfg.Grid.FramePeriod(cfg.BaseOrbit),
			FramesPerDay:     observed / float64(days),
			CapacityFrac:     res.FrameCapacity() / observed,
			FrameBits:        cfg.Camera.FrameBits(),
			Prevalence:       0.48, // the Sentinel-like dataset's high-value split
			ContactGapFrames: planner.DeriveLink(res).FramesBetweenContacts,
		}, nil
	})
	if err != nil {
		return kodan.Mission{}, err
	}
	return v.(kodan.Mission), nil
}

// deployment resolves the request's deployment environment, filling
// unspecified deadline/capacity from the reference mission.
func (s *Server) deployment(ctx context.Context, req planRequest, target kodan.Target) (kodan.Deployment, error) {
	d := kodan.Deployment{
		Target:       target,
		Deadline:     time.Duration(req.DeadlineMs * float64(time.Millisecond)),
		CapacityFrac: req.CapacityFrac,
		FillIdle:     !req.NoFill,
	}
	if d.Deadline <= 0 || d.CapacityFrac <= 0 {
		m, err := s.mission(ctx, 1, 1)
		if err != nil {
			return kodan.Deployment{}, err
		}
		if d.Deadline <= 0 {
			d.Deadline = m.FrameDeadline
		}
		if d.CapacityFrac <= 0 {
			d.CapacityFrac = m.CapacityFrac
		}
	}
	return d, nil
}

// planKey builds the plan-cache key from the fully resolved deployment,
// so requests that spell the same deployment differently (defaulted vs
// explicit) share one entry, and float parameters are keyed by their
// exact bits.
func planKey(seed uint64, appIndex int, quantized bool, d kodan.Deployment) string {
	return fmt.Sprintf("plan|%d|%d|%t|%d|%x|%x|%t",
		seed, appIndex, quantized, d.Target, d.Deadline,
		math.Float64bits(d.CapacityFrac), d.FillIdle)
}

// handleHealthz is liveness: the process is up.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is readiness: serving, or draining for shutdown.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSONError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ready")
}

// handleMetrics exports the ops counters as JSON.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.metrics.Snapshot(s.cache, s.pool))
}

// catalogResponse is the /v1/catalog document.
type catalogResponse struct {
	Seed    uint64       `json:"seed"`
	Targets []string     `json:"targets"`
	Apps    []catalogApp `json:"apps"`
	Tilings []int        `json:"tilingsPerSide"`
	Ctx     []catalogCtx `json:"contexts"`
}

type catalogApp struct {
	Index int    `json:"index"`
	Name  string `json:"name"`
}

type catalogCtx struct {
	Name          string  `json:"name"`
	Count         int     `json:"count"`
	HighValueFrac float64 `json:"highValueFrac"`
}

// handleCatalog lists targets, applications, candidate tilings, and the
// generated contexts of the (optionally ?seed=) workspace.
func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	seed := s.cfg.Seed
	if q := r.URL.Query().Get("seed"); q != "" {
		if _, err := fmt.Sscanf(q, "%d", &seed); err != nil {
			writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad seed %q", q))
			return
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()

	resp := catalogResponse{Seed: seed}
	for _, t := range kodan.Targets() {
		resp.Targets = append(resp.Targets, t.String())
	}
	for _, a := range kodan.Applications() {
		resp.Apps = append(resp.Apps, catalogApp{Index: a.Index, Name: a.Name})
	}
	for _, tl := range s.cfg.TransformConfig(seed).Tilings {
		resp.Tilings = append(resp.Tilings, tl.PerSide)
	}
	sys, _, err := s.system(ctx, seed)
	if err != nil {
		s.writeError(w, err)
		return
	}
	for _, c := range sys.Contexts() {
		resp.Ctx = append(resp.Ctx, catalogCtx{Name: c.Name, Count: c.Count, HighValueFrac: c.HighValueFrac})
	}
	writeJSON(w, http.StatusOK, resp)
}

// transformResponse is the /v1/transform document.
type transformResponse struct {
	Seed      uint64       `json:"seed"`
	App       int          `json:"app"`
	AppName   string       `json:"appName"`
	Quantized bool         `json:"quantized"`
	Tilings   []int        `json:"tilingsPerSide"`
	Contexts  []catalogCtx `json:"contexts"`
}

// handleTransform runs (or reuses) the one-time transformation for an
// application.
func (s *Server) handleTransform(w http.ResponseWriter, r *http.Request) {
	var req planRequest
	if err := decode(r, &req); err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.App < 1 || req.App > len(kodan.Applications()) {
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("app must be 1..%d", len(kodan.Applications())))
		return
	}
	ctx, cancel := s.requestContext(r, req)
	defer cancel()

	seed := s.seedOf(req)
	app, src, err := s.application(ctx, tenantOf(r.Context()), seed, req.App, req.Quantized)
	if err != nil {
		s.writeError(w, err)
		return
	}
	resp := transformResponse{Seed: seed, App: req.App, AppName: app.Arch().Name, Quantized: req.Quantized}
	for _, tl := range app.Tilings() {
		resp.Tilings = append(resp.Tilings, tl.PerSide)
	}
	for _, c := range app.ContextStatsList() {
		resp.Contexts = append(resp.Contexts, catalogCtx{Name: c.Name, Count: c.Count, HighValueFrac: c.HighValueFrac})
	}
	w.Header().Set("X-Kodan-Cache", src.String())
	writeJSON(w, http.StatusOK, resp)
}

// handlePlan generates (or reuses) the selection logic for an app x
// target x deployment. The default mode returns the deployment bundle —
// the same artifact ExportBundle writes, byte-identical across identical
// requests; mode "hybrid" runs the space-ground execution planner on top
// of that selection logic and returns per-context placements.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var req planRequest
	if err := decode(r, &req); err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.App < 1 || req.App > len(kodan.Applications()) {
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("app must be 1..%d", len(kodan.Applications())))
		return
	}
	target, err := parseTarget(req.Target)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	mode := strings.ToLower(strings.TrimSpace(req.Mode))
	switch mode {
	case "", "bundle":
		if req.GroundCost != nil || req.BufferFrames != nil || req.ContactGapFrames != 0 {
			writeJSONError(w, http.StatusBadRequest, "groundCost, bufferFrames, and contactGapFrames apply only to mode \"hybrid\"")
			return
		}
	case "hybrid":
		s.handleHybridPlan(w, r, req, target)
		return
	default:
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("unknown mode %q (want bundle or hybrid)", req.Mode))
		return
	}
	ctx, cancel := s.requestContext(r, req)
	defer cancel()

	seed := s.seedOf(req)
	d, err := s.deployment(ctx, req, target)
	if err != nil {
		s.writeError(w, err)
		return
	}

	tenant := tenantOf(r.Context())
	v, src, err := s.cache.Do(ctx, planKey(seed, req.App, req.Quantized, d), func(cctx context.Context) (interface{}, error) {
		app, _, err := s.application(cctx, tenant, seed, req.App, req.Quantized)
		if err != nil {
			return nil, err
		}
		logic, est := app.SelectionLogic(d)
		var buf bytes.Buffer
		if err := app.ExportBundle(&buf, d, logic, est); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Kodan-Cache", src.String())
	w.Write(v.([]byte)) //nolint:errcheck
}

// hybridPlanResponse is the /v1/plan mode=hybrid document.
type hybridPlanResponse struct {
	Seed             uint64            `json:"seed"`
	App              int               `json:"app"`
	Target           string            `json:"target"`
	Mode             string            `json:"mode"`
	TilesPerSide     int               `json:"tilesPerSide"`
	DeadlineMs       float64           `json:"deadlineMs"`
	CapacityFrac     float64           `json:"capacityFrac"`
	GroundCost       float64           `json:"groundCost"`
	BufferFrames     float64           `json:"bufferFrames"`
	ContactGapFrames float64           `json:"contactGapFrames"`
	Utility          float64           `json:"utility"`
	DVD              float64           `json:"dvd"`
	OnboardFrac      float64           `json:"onboardFrac"`
	DownlinkFrac     float64           `json:"downlinkFrac"`
	DeferFrac        float64           `json:"deferFrac"`
	DropFrac         float64           `json:"dropFrac"`
	EnergyPerFrameJ  float64           `json:"energyPerFrameJ"`
	Placements       []hybridPlacement `json:"placements"`
}

// hybridPlacement is one context's placement in a hybrid plan.
type hybridPlacement struct {
	Context     int     `json:"context"`
	TileFrac    float64 `json:"tileFrac"`
	Base        string  `json:"base"`
	Disposition string  `json:"disposition"`
	Action      string  `json:"action"`
}

// hybridKey extends the plan-cache key with the hybrid knobs.
func hybridKey(seed uint64, appIndex int, quantized bool, d kodan.Deployment, env kodan.PlannerEnv) string {
	return fmt.Sprintf("%s|hybrid|%x|%x|%x", planKey(seed, appIndex, quantized, d),
		math.Float64bits(env.Costs.GroundPerFrame),
		math.Float64bits(env.BufferFrames),
		math.Float64bits(env.FramesBetweenContacts))
}

// handleHybridPlan is /v1/plan mode=hybrid: the deployment's selection
// logic re-placed by the hybrid space-ground planner. Results are cached
// under the fully resolved deployment plus the planner knobs; each served
// plan is counted in the shared telemetry registry.
func (s *Server) handleHybridPlan(w http.ResponseWriter, r *http.Request, req planRequest, target kodan.Target) {
	if req.GroundCost != nil && (*req.GroundCost < 0 || math.IsNaN(*req.GroundCost)) {
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("groundCost must be >= 0, got %v", *req.GroundCost))
		return
	}
	if req.BufferFrames != nil && (*req.BufferFrames < 0 || math.IsNaN(*req.BufferFrames)) {
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("bufferFrames must be >= 0, got %v", *req.BufferFrames))
		return
	}
	if req.ContactGapFrames < 0 || math.IsNaN(req.ContactGapFrames) {
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("contactGapFrames must be >= 0, got %v", req.ContactGapFrames))
		return
	}
	ctx, cancel := s.requestContext(r, req)
	defer cancel()

	seed := s.seedOf(req)
	d, err := s.deployment(ctx, req, target)
	if err != nil {
		s.writeError(w, err)
		return
	}
	env := kodan.PlannerEnv{
		Bus:                   kodan.ThreeUBus(),
		Costs:                 kodan.DefaultPlannerCosts(),
		BufferFrames:          64,
		FramesBetweenContacts: req.ContactGapFrames,
	}
	if req.ContactGapFrames == 0 {
		m, err := s.mission(ctx, 1, 1)
		if err != nil {
			s.writeError(w, err)
			return
		}
		env.FramesBetweenContacts = m.ContactGapFrames
	}
	if req.GroundCost != nil {
		env.Costs.GroundPerFrame = *req.GroundCost
	}
	if req.BufferFrames != nil {
		env.BufferFrames = *req.BufferFrames
	}

	tenant := tenantOf(r.Context())
	v, src, err := s.cache.Do(ctx, hybridKey(seed, req.App, req.Quantized, d, env), func(cctx context.Context) (interface{}, error) {
		app, _, err := s.application(cctx, tenant, seed, req.App, req.Quantized)
		if err != nil {
			return nil, err
		}
		plan, err := app.PlanHybrid(d, env)
		if err != nil {
			return nil, err
		}
		prof, err := app.ProfileFor(plan.Tiling)
		if err != nil {
			return nil, err
		}
		resp := hybridPlanResponse{
			Seed: seed, App: req.App, Target: target.String(), Mode: "hybrid",
			TilesPerSide:     plan.Tiling.PerSide,
			DeadlineMs:       float64(d.Deadline.Milliseconds()),
			CapacityFrac:     d.CapacityFrac,
			GroundCost:       env.Costs.GroundPerFrame,
			BufferFrames:     env.BufferFrames,
			ContactGapFrames: env.FramesBetweenContacts,
			Utility:          plan.Eval.Utility,
			DVD:              plan.Eval.DVD,
			OnboardFrac:      plan.Eval.OnboardFrac,
			DownlinkFrac:     plan.Eval.DownlinkFrac,
			DeferFrac:        plan.Eval.DeferFrac,
			DropFrac:         plan.Eval.DropFrac,
			EnergyPerFrameJ:  plan.Eval.EnergyPerFrameJ,
		}
		for c, disp := range plan.Dispositions {
			resp.Placements = append(resp.Placements, hybridPlacement{
				Context:     c,
				TileFrac:    prof.Contexts[c].TileFrac,
				Base:        plan.Base.Actions[c].String(),
				Disposition: disp.String(),
				Action:      plan.Actions[c].String(),
			})
		}
		return resp, nil
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	resp := v.(hybridPlanResponse)
	s.metrics.PlannerPlanned(resp.DeferFrac)
	w.Header().Set("X-Kodan-Cache", src.String())
	writeJSON(w, http.StatusOK, resp)
}

// simulateResponse is the /v1/simulate document.
type simulateResponse struct {
	Seed          uint64  `json:"seed"`
	App           int     `json:"app"`
	Target        string  `json:"target"`
	Mode          string  `json:"mode"`
	Days          int     `json:"days"`
	Sats          int     `json:"sats"`
	FramesPerDay  float64 `json:"framesPerDay"`
	DeadlineMs    float64 `json:"deadlineMs"`
	CapacityFrac  float64 `json:"capacityFrac"`
	TilesPerSide  int     `json:"tilesPerSide,omitempty"`
	DVD           float64 `json:"dvd"`
	FrameMs       float64 `json:"frameMs"`
	ProcessedFrac float64 `json:"processedFrac"`
	BentPipeDVD   float64 `json:"bentPipeDVD"`
	// Improvement is DVD relative to the bent pipe (0.9 = +90%).
	Improvement float64 `json:"improvement"`
}

// handleSimulate evaluates a deployment mode — Kodan, bent pipe, or prior
// work's direct deployment — in a simulated mission of the given span and
// constellation size.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req simulateRequest
	if err := decode(r, &req); err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.App < 1 || req.App > len(kodan.Applications()) {
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("app must be 1..%d", len(kodan.Applications())))
		return
	}
	target, err := parseTarget(req.Target)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	mode := strings.ToLower(strings.TrimSpace(req.Mode))
	if mode == "" {
		mode = "kodan"
	}
	switch mode {
	case "kodan", "bentpipe", "direct":
	default:
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("unknown mode %q (want kodan, bentpipe, or direct)", req.Mode))
		return
	}
	ctx, cancel := s.requestContext(r, req.planRequest)
	defer cancel()

	if req.Days <= 0 {
		req.Days = 1
	}
	if req.Sats <= 0 {
		req.Sats = 1
	}
	m, err := s.mission(ctx, req.Days, req.Sats)
	if err != nil {
		s.writeError(w, err)
		return
	}
	d := m.Deployment(target)
	d.FillIdle = !req.NoFill

	seed := s.seedOf(req.planRequest)
	app, _, err := s.application(ctx, tenantOf(r.Context()), seed, req.App, req.Quantized)
	if err != nil {
		s.writeError(w, err)
		return
	}

	resp := simulateResponse{
		Seed: seed, App: req.App, Target: target.String(), Mode: mode,
		Days: req.Days, Sats: req.Sats,
		FramesPerDay: m.FramesPerDay,
		DeadlineMs:   float64(d.Deadline.Milliseconds()),
		CapacityFrac: d.CapacityFrac,
	}
	bent := app.BentPipe(d)
	resp.BentPipeDVD = bent.DVD

	var est kodan.Estimate
	switch mode {
	case "kodan":
		logic, e := app.SelectionLogic(d)
		est = e
		resp.TilesPerSide = logic.Tiling.PerSide
	case "bentpipe":
		est = bent
	case "direct":
		// Prior OEC work: the reference model on every tile; report the
		// best tiling for it, mirroring the paper's strongest baseline.
		first := true
		for _, tl := range app.Tilings() {
			e, err := app.DirectDeploy(d, tl)
			if err != nil {
				s.writeError(w, err)
				return
			}
			if first || e.DVD > est.DVD {
				est = e
				resp.TilesPerSide = tl.PerSide
				first = false
			}
		}
	}
	resp.DVD = est.DVD
	resp.FrameMs = float64(est.FrameTime.Milliseconds())
	resp.ProcessedFrac = est.ProcessedFrac
	if bent.DVD > 0 {
		resp.Improvement = est.DVD/bent.DVD - 1
	}
	writeJSON(w, http.StatusOK, resp)
}
