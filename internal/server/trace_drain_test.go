package server

import (
	"bytes"
	"context"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"kodan"
	"kodan/internal/telemetry"
	"kodan/internal/telemetry/analyze"
)

// TestTraceWrittenAfterDrainIsBalanced is the drain-ordering check behind
// `kodan-server -trace FILE`: the trace is exported only after Shutdown
// returns, and Shutdown returns only after in-flight requests drain — so
// a request that was mid-transform when shutdown began must appear in the
// export as fully balanced spans (http route, pool wait, transform), with
// nothing left unfinished. If the export ever moved before the drain,
// this test would see the in-flight request's spans truncated.
func TestTraceWrittenAfterDrainIsBalanced(t *testing.T) {
	tracer := telemetry.NewTracer(0)
	release := make(chan struct{})
	cfg := testConfig()
	cfg.Tracer = tracer
	cfg.Transform = func(ctx context.Context, sys *kodan.System, appIndex int, quantized bool) (*kodan.Application, error) {
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return sys.TransformVariantCtx(ctx, appIndex, quantized)
	}
	s := New(cfg)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()
	url := "http://" + l.Addr().String()

	resCh := make(chan int, 1)
	go func() {
		resp, err := http.Post(url+"/v1/plan", "application/json", strings.NewReader(planBody(4)))
		if err != nil {
			resCh <- -1
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resCh <- resp.StatusCode
	}()
	waitFor(t, 5*time.Second, "request in flight", func() bool {
		return s.Metrics().Pool.InFlight == 1
	})

	// Begin the drain while the transform is still blocked, then release
	// it; Shutdown must not return until the request completes.
	shutdownRet := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownRet <- s.Shutdown(ctx)
	}()
	waitFor(t, 5*time.Second, "listener to close", func() bool {
		_, err := net.DialTimeout("tcp", l.Addr().String(), 50*time.Millisecond)
		return err != nil
	})
	close(release)
	if err := <-shutdownRet; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if code := <-resCh; code != http.StatusOK {
		t.Fatalf("drained request: status %d, want 200", code)
	}

	// Only now — after the drain, mirroring the CLI's shutdown sequence —
	// export and analyze the trace.
	var buf bytes.Buffer
	if err := tracer.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	trace, err := analyze.Parse(&buf)
	if err != nil {
		t.Fatalf("exported trace does not parse: %v", err)
	}
	if len(trace.Unfinished) != 0 {
		t.Fatalf("post-drain trace has unfinished spans: %v", trace.Unfinished)
	}
	if trace.OrphanEnds != 0 {
		t.Fatalf("post-drain trace has %d orphan ends", trace.OrphanEnds)
	}
	seen := make(map[string]bool)
	for _, p := range trace.Phases() {
		seen[p.Name] = true
	}
	for _, want := range []string{"http./v1/plan", "server.pool_wait", "server.transform"} {
		if !seen[want] {
			t.Errorf("drained request's %q span missing from the exported trace (got %v)", want, seen)
		}
	}
}
