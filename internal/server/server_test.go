package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kodan"
	"kodan/internal/cluster"
	"kodan/internal/ctxengine"
)

// tinyTransformConfig is a transformation sized for sub-second unit
// tests: one tiling, few frames, a fixed k=3 context sweep.
func tinyTransformConfig(seed uint64) kodan.TransformConfig {
	cfg := kodan.DefaultTransformConfig(seed)
	cfg.Frames = 24
	cfg.TileRes = 8
	cfg.Tilings = []kodan.Tiling{{PerSide: 3}}
	cfg.PixelsPerFrame = 90
	cfg.EvalPixelsPerFrame = 90
	cfg.Context.Ks = []int{3}
	cfg.Context.Metrics = []cluster.Metric{cluster.Euclidean}
	cfg.Context.Transforms = []ctxengine.Transform{ctxengine.Standardized}
	cfg.Context.EngineTrain.Epochs = 8
	return cfg
}

func newTestSystem(cfg kodan.TransformConfig) (*kodan.System, error) {
	return kodan.NewSystem(cfg)
}

// testConfig returns a server config over the tiny pipeline.
func testConfig() Config {
	return Config{
		Seed:            7,
		Workers:         2,
		QueueDepth:      2,
		Timeout:         30 * time.Second,
		TransformConfig: tinyTransformConfig,
	}
}

// planBody is the canonical plan request used across tests: explicit
// deadline/capacity so no orbital simulation is needed.
func planBody(app int) string {
	return fmt.Sprintf(`{"app":%d,"target":"orin","deadlineMs":24000,"capacityFrac":0.21}`, app)
}

func post(t *testing.T, client *http.Client, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getJSON(t *testing.T, url string, v interface{}) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
	return resp
}

// waitFor polls cond until true or the deadline elapses.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestPlanSingleFlight is acceptance (a): two concurrent identical
// /v1/plan requests trigger exactly one underlying Transform call and
// return byte-identical bundles.
func TestPlanSingleFlight(t *testing.T) {
	var calls atomic.Int64
	cfg := testConfig()
	cfg.Transform = func(ctx context.Context, sys *kodan.System, appIndex int, quantized bool) (*kodan.Application, error) {
		calls.Add(1)
		return sys.TransformVariantCtx(ctx, appIndex, quantized)
	}
	s := New(cfg)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 4
	bodies := make([][]byte, n)
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, data := post(t, ts.Client(), ts.URL+"/v1/plan", planBody(4))
			codes[i] = resp.StatusCode
			bodies[i] = data
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d (%s)", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d: bundle differs from request 0", i)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("Transform ran %d times for %d identical requests, want 1", got, n)
	}

	// The bundle must round-trip through the existing importer.
	if _, err := kodan.ImportSelection(bytes.NewReader(bodies[0])); err != nil {
		t.Fatalf("served bundle does not import: %v", err)
	}

	// A repeat request is a pure cache hit: no new transform.
	resp, data := post(t, ts.Client(), ts.URL+"/v1/plan", planBody(4))
	if resp.StatusCode != http.StatusOK || !bytes.Equal(data, bodies[0]) {
		t.Fatalf("repeat request: status %d, identical=%v", resp.StatusCode, bytes.Equal(data, bodies[0]))
	}
	if resp.Header.Get("X-Kodan-Cache") != "hit" {
		t.Fatalf("repeat request cache source = %q, want hit", resp.Header.Get("X-Kodan-Cache"))
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("Transform ran %d times after cache hit, want 1", got)
	}
}

// TestClientTimeoutCancelsWorker is acceptance (b): a request with a
// short timeout returns promptly and the in-flight worker observes
// cancellation.
func TestClientTimeoutCancelsWorker(t *testing.T) {
	observed := make(chan struct{})
	cfg := testConfig()
	cfg.Transform = func(ctx context.Context, _ *kodan.System, _ int, _ bool) (*kodan.Application, error) {
		<-ctx.Done() // simulate a long training loop hitting its ctx check
		close(observed)
		return nil, ctx.Err()
	}
	s := New(cfg)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	start := time.Now()
	resp, body := post(t, ts.Client(), ts.URL+"/v1/plan",
		`{"app":4,"target":"orin","deadlineMs":24000,"capacityFrac":0.21,"timeoutMs":150}`)
	elapsed := time.Since(start)

	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, body)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("timed-out request took %v, want prompt return", elapsed)
	}
	select {
	case <-observed:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never observed cancellation")
	}
	waitFor(t, 5*time.Second, "cancelled transform metric", func() bool {
		return s.Metrics().Transforms.Cancelled == 1
	})
}

// TestPoolSaturation is acceptance (c): when every worker is busy and the
// queue is full, new work is rejected with 429 and a Retry-After header.
func TestPoolSaturation(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	cfg.QueueDepth = 1
	cfg.Transform = func(ctx context.Context, _ *kodan.System, _ int, _ bool) (*kodan.Application, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	s := New(cfg)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Distinct apps so each request is its own cache key. The first two
	// occupy the worker and the queue slot until their 1.5s timeouts.
	blocker := func(app int) string {
		return fmt.Sprintf(`{"app":%d,"target":"orin","deadlineMs":24000,"capacityFrac":0.21,"timeoutMs":1500}`, app)
	}
	var wg sync.WaitGroup
	for _, app := range []int{1, 2} {
		wg.Add(1)
		go func(app int) {
			defer wg.Done()
			post(t, ts.Client(), ts.URL+"/v1/plan", blocker(app))
		}(app)
	}
	waitFor(t, 5*time.Second, "pool to fill", func() bool {
		snap := s.Metrics()
		return snap.Pool.InFlight == 1 && snap.Pool.Queued == 1
	})

	resp, body := post(t, ts.Client(), ts.URL+"/v1/plan", blocker(3))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	wg.Wait()
	if got := s.Metrics().Pool.Rejected; got != 1 {
		t.Fatalf("pool rejected = %d, want 1", got)
	}
}

// TestMetricsConsistent is acceptance (d): /metrics reports cache hits,
// misses, and latency percentiles consistent with the traffic generated.
func TestMetricsConsistent(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Traffic: two identical plans (miss+compute, then hit) and one
	// transform for the same app (hit on the transform cache).
	for i := 0; i < 2; i++ {
		resp, body := post(t, ts.Client(), ts.URL+"/v1/plan", planBody(2))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("plan %d: status %d (%s)", i, resp.StatusCode, body)
		}
	}
	resp, body := post(t, ts.Client(), ts.URL+"/v1/transform", `{"app":2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("transform: status %d (%s)", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Kodan-Cache"); got != "hit" {
		t.Fatalf("transform after plan: cache %q, want hit", got)
	}

	var snap Snapshot
	getJSON(t, ts.URL+"/metrics", &snap)

	// Keys populated: sys|7, app|7|2|false, plan|... => first plan is 3 misses
	// (plan, app, sys), the repeat plan is 1 hit, the transform is 1 hit.
	if snap.Cache.Misses != 3 {
		t.Errorf("cache misses = %d, want 3", snap.Cache.Misses)
	}
	if snap.Cache.Hits != 2 {
		t.Errorf("cache hits = %d, want 2", snap.Cache.Hits)
	}
	plan := snap.Requests["/v1/plan"]
	if plan.Count != 2 || plan.ByStatus["200"] != 2 {
		t.Errorf("plan route: count=%d byStatus=%v, want 2 x 200", plan.Count, plan.ByStatus)
	}
	if plan.Latency.P50 <= 0 || plan.Latency.P99 < plan.Latency.P50 {
		t.Errorf("plan latency percentiles inconsistent: %+v", plan.Latency)
	}
	tr := snap.Requests["/v1/transform"]
	if tr.Count != 1 || tr.ByStatus["200"] != 1 {
		t.Errorf("transform route: count=%d byStatus=%v, want 1 x 200", tr.Count, tr.ByStatus)
	}
	if snap.Transforms.Started != 1 || snap.Transforms.Completed != 1 {
		t.Errorf("transform lifecycle = %+v, want exactly one started+completed", snap.Transforms)
	}
	if snap.UptimeSeconds <= 0 {
		t.Errorf("uptime = %v", snap.UptimeSeconds)
	}
}

// TestGracefulShutdownDrains is acceptance (e): shutdown lets an
// in-flight request complete before the listener closes.
func TestGracefulShutdownDrains(t *testing.T) {
	release := make(chan struct{})
	var computeDone atomic.Value // time.Time of Transform completion
	cfg := testConfig()
	cfg.Transform = func(ctx context.Context, sys *kodan.System, appIndex int, quantized bool) (*kodan.Application, error) {
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		app, err := sys.TransformVariantCtx(ctx, appIndex, quantized)
		computeDone.Store(time.Now())
		return app, err
	}
	s := New(cfg)

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()
	url := "http://" + l.Addr().String()

	type result struct {
		code int
		body []byte
		at   time.Time
	}
	resCh := make(chan result, 1)
	go func() {
		resp, err := http.Post(url+"/v1/plan", "application/json", strings.NewReader(planBody(5)))
		if err != nil {
			resCh <- result{code: -1, body: []byte(err.Error()), at: time.Now()}
			return
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		resCh <- result{code: resp.StatusCode, body: data, at: time.Now()}
	}()

	// Wait until the request is genuinely in flight, then shut down.
	waitFor(t, 5*time.Second, "request in flight", func() bool {
		return s.Metrics().Pool.InFlight == 1
	})
	shutdownDone := make(chan time.Time, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		shutdownDone <- time.Now()
	}()

	// New connections must be refused once the listener is down, while
	// the in-flight request keeps computing.
	waitFor(t, 5*time.Second, "listener to close", func() bool {
		_, err := net.DialTimeout("tcp", l.Addr().String(), 50*time.Millisecond)
		return err != nil
	})
	close(release)

	res := <-resCh
	if res.code != http.StatusOK {
		t.Fatalf("in-flight request: status %d (%s)", res.code, res.body)
	}
	doneAt := <-shutdownDone
	// Shutdown must not have returned before the in-flight computation
	// finished server-side. (Client-side timestamps race with Shutdown's
	// return — the response is complete once written, possibly before the
	// client reads it — so the anchor is the Transform completion stamp.)
	finished, ok := computeDone.Load().(time.Time)
	if !ok {
		t.Fatal("transform never completed")
	}
	if doneAt.Before(finished) {
		t.Fatal("shutdown returned before the in-flight computation completed")
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Fatalf("serve returned %v, want ErrServerClosed", err)
	}
	if _, err := kodan.ImportSelection(bytes.NewReader(res.body)); err != nil {
		t.Fatalf("drained response is not a valid bundle: %v", err)
	}
}

// TestOpsEndpoints covers /healthz, /readyz (serving and draining), and
// input validation paths.
func TestOpsEndpoints(t *testing.T) {
	s := New(testConfig())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
	}

	for _, tc := range []struct {
		name, path, body string
		want             int
	}{
		{"bad app", "/v1/plan", `{"app":0,"target":"orin"}`, http.StatusBadRequest},
		{"app out of range", "/v1/transform", `{"app":9}`, http.StatusBadRequest},
		{"bad target", "/v1/plan", `{"app":1,"target":"tpu"}`, http.StatusBadRequest},
		{"unknown field", "/v1/plan", `{"app":1,"target":"orin","nope":1}`, http.StatusBadRequest},
		{"bad mode", "/v1/simulate", `{"app":1,"target":"orin","mode":"warp"}`, http.StatusBadRequest},
		{"garbage body", "/v1/plan", `{`, http.StatusBadRequest},
	} {
		resp, body := post(t, ts.Client(), ts.URL+tc.path, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d (%s), want %d", tc.name, resp.StatusCode, body, tc.want)
		}
	}

	// Method guard from the mux patterns.
	resp, err := http.Get(ts.URL + "/v1/plan")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/plan: status %d, want 405", resp.StatusCode)
	}

	// Draining flips readiness.
	s.Close()
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining: status %d, want 503", resp.StatusCode)
	}
}

// TestCatalog exercises GET /v1/catalog with a lazily built workspace.
func TestCatalog(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var cat catalogResponse
	resp := getJSON(t, ts.URL+"/v1/catalog", &cat)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if cat.Seed != 7 || len(cat.Targets) != 3 || len(cat.Apps) != 7 {
		t.Fatalf("catalog shape: seed=%d targets=%d apps=%d", cat.Seed, len(cat.Targets), len(cat.Apps))
	}
	if len(cat.Ctx) < 2 {
		t.Fatalf("catalog has %d contexts, want >= 2", len(cat.Ctx))
	}
	if len(cat.Tilings) != 1 || cat.Tilings[0] != 3 {
		t.Fatalf("catalog tilings = %v", cat.Tilings)
	}
}

// TestSimulate exercises /v1/simulate across modes; the day-long orbital
// simulation runs once and is cached across the three requests.
func TestSimulate(t *testing.T) {
	if testing.Short() {
		t.Skip("orbital simulation is slow")
	}
	s := New(testConfig())
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	dvd := make(map[string]float64)
	for _, mode := range []string{"kodan", "bentpipe", "direct"} {
		body := fmt.Sprintf(`{"app":4,"target":"orin","mode":%q}`, mode)
		resp, data := post(t, ts.Client(), ts.URL+"/v1/simulate", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d (%s)", mode, resp.StatusCode, data)
		}
		var out simulateResponse
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if out.DVD <= 0 || out.DeadlineMs <= 0 || out.CapacityFrac <= 0 {
			t.Fatalf("%s: degenerate response %+v", mode, out)
		}
		dvd[mode] = out.DVD
	}
	if dvd["kodan"] <= dvd["bentpipe"] {
		t.Errorf("kodan DVD %.3f not above bent pipe %.3f", dvd["kodan"], dvd["bentpipe"])
	}
}

// TestTransformQuantizedVariant pins the int8-variant plumbing: quantized
// requests are transformed and cached independently of float ones (same
// seed and app, two cache entries), the response echoes the variant, and
// repeating either variant is a pure cache hit.
func TestTransformQuantizedVariant(t *testing.T) {
	var calls, quantCalls atomic.Int64
	cfg := testConfig()
	cfg.Transform = func(ctx context.Context, sys *kodan.System, appIndex int, quantized bool) (*kodan.Application, error) {
		calls.Add(1)
		if quantized {
			quantCalls.Add(1)
		}
		return sys.TransformVariantCtx(ctx, appIndex, quantized)
	}
	s := New(cfg)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := func(body, wantCache string, wantQuantized bool) {
		t.Helper()
		resp, data := post(t, ts.Client(), ts.URL+"/v1/transform", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d (%s)", resp.StatusCode, data)
		}
		if got := resp.Header.Get("X-Kodan-Cache"); got != wantCache {
			t.Fatalf("cache %q, want %q", got, wantCache)
		}
		var out transformResponse
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		if out.Quantized != wantQuantized {
			t.Fatalf("response quantized=%v, want %v", out.Quantized, wantQuantized)
		}
	}

	req(`{"app":2}`, "miss", false)
	req(`{"app":2,"quantized":true}`, "miss", true)
	req(`{"app":2}`, "hit", false)
	req(`{"app":2,"quantized":true}`, "hit", true)

	if got := calls.Load(); got != 2 {
		t.Errorf("transform calls = %d, want 2 (one per variant)", got)
	}
	if got := quantCalls.Load(); got != 1 {
		t.Errorf("quantized transform calls = %d, want 1", got)
	}

	// The plan cache keys the variant too: a quantized plan for the same
	// deployment is a distinct (cached) artifact, not the float bundle.
	planQ := `{"app":2,"target":"orin","deadlineMs":24000,"capacityFrac":0.21,"quantized":true}`
	respF, bundleF := post(t, ts.Client(), ts.URL+"/v1/plan", planBody(2))
	respQ, bundleQ := post(t, ts.Client(), ts.URL+"/v1/plan", planQ)
	if respF.StatusCode != http.StatusOK || respQ.StatusCode != http.StatusOK {
		t.Fatalf("plan statuses %d/%d", respF.StatusCode, respQ.StatusCode)
	}
	if respQ.Header.Get("X-Kodan-Cache") != "miss" {
		t.Errorf("quantized plan served from %q, want its own miss", respQ.Header.Get("X-Kodan-Cache"))
	}
	if len(bundleF) == 0 || len(bundleQ) == 0 {
		t.Fatalf("empty bundle: float=%d quantized=%d bytes", len(bundleF), len(bundleQ))
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("plans re-transformed: calls = %d, want still 2", got)
	}
}
