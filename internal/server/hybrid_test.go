package server

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
)

// hybridBody is the canonical hybrid plan request: explicit deployment and
// contact cadence so no orbital simulation is needed.
func hybridBody(extra string) string {
	return `{"app":4,"target":"orin","deadlineMs":24000,"capacityFrac":0.21,"mode":"hybrid","contactGapFrames":10` + extra + `}`
}

// TestPlanHybridEndpoint covers /v1/plan mode=hybrid end to end: a valid
// plan document, caching across identical requests, and the planner
// counters in the shared telemetry registry.
func TestPlanHybridEndpoint(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, data := post(t, ts.Client(), ts.URL+"/v1/plan", hybridBody(""))
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var doc hybridPlanResponse
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("bad response body: %v\n%s", err, data)
	}
	if doc.Mode != "hybrid" || doc.App != 4 || doc.ContactGapFrames != 10 {
		t.Fatalf("document echo: %+v", doc)
	}
	if doc.BufferFrames != 64 || doc.GroundCost <= 0 {
		t.Fatalf("defaults not applied: buffer %v ground %v", doc.BufferFrames, doc.GroundCost)
	}
	if len(doc.Placements) == 0 {
		t.Fatal("no placements in plan")
	}
	var frac float64
	for _, p := range doc.Placements {
		frac += p.TileFrac
		if p.Disposition == "" || p.Action == "" || p.Base == "" {
			t.Fatalf("incomplete placement %+v", p)
		}
	}
	if frac < 0.99 || frac > 1.01 {
		t.Errorf("placement tile fractions sum to %.4f", frac)
	}
	if sum := doc.OnboardFrac + doc.DownlinkFrac + doc.DeferFrac + doc.DropFrac; sum < 0.99 || sum > 1.01 {
		t.Errorf("placement mix sums to %.4f", sum)
	}

	// The identical request is a cache hit with byte-identical body.
	resp2, data2 := post(t, ts.Client(), ts.URL+"/v1/plan", hybridBody(""))
	if resp2.StatusCode != 200 || resp2.Header.Get("X-Kodan-Cache") != "hit" {
		t.Fatalf("repeat: status %d cache %q", resp2.StatusCode, resp2.Header.Get("X-Kodan-Cache"))
	}
	if !bytes.Equal(data, data2) {
		t.Error("cached hybrid plan not byte-identical")
	}

	// A different ground cost is a distinct cache entry.
	resp3, _ := post(t, ts.Client(), ts.URL+"/v1/plan", hybridBody(`,"groundCost":0`))
	if resp3.StatusCode != 200 || resp3.Header.Get("X-Kodan-Cache") == "hit" {
		t.Fatalf("distinct knobs: status %d cache %q", resp3.StatusCode, resp3.Header.Get("X-Kodan-Cache"))
	}

	// Both served plans landed in the shared registry.
	snap := s.Registry().Snapshot()
	if got := snap.Counters["server.planner.plans"]; got != 3 {
		t.Errorf("planner.plans = %d, want 3", got)
	}
	if h, ok := snap.Histograms["server.planner.defer_frac"]; !ok || h.Count != 3 {
		t.Errorf("planner.defer_frac histogram = %+v", h)
	}
}

// TestPlanHybridValidation covers the request rejections: unknown modes,
// hybrid knobs on bundle requests, and unpriceable knob values.
func TestPlanHybridValidation(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name, body string
	}{
		{"unknown mode", `{"app":4,"target":"orin","mode":"orbit"}`},
		{"groundCost without hybrid", `{"app":4,"target":"orin","groundCost":1}`},
		{"bufferFrames without hybrid", `{"app":4,"target":"orin","mode":"bundle","bufferFrames":8}`},
		{"contactGapFrames without hybrid", `{"app":4,"target":"orin","contactGapFrames":10}`},
		{"negative groundCost", hybridBody(`,"groundCost":-1`)},
		{"negative bufferFrames", hybridBody(`,"bufferFrames":-4`)},
		{"negative contactGap", `{"app":4,"target":"orin","mode":"hybrid","contactGapFrames":-2}`},
	}
	for _, tc := range cases {
		resp, data := post(t, ts.Client(), ts.URL+"/v1/plan", tc.body)
		if resp.StatusCode != 400 {
			t.Errorf("%s: status %d, want 400\n%s", tc.name, resp.StatusCode, data)
		}
	}
}

// TestPlanHybridSingleFlight issues concurrent identical hybrid requests
// and expects one computation: every response identical, sources limited
// to miss/join/hit.
func TestPlanHybridSingleFlight(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 4
	bodies := make([][]byte, n)
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, data := post(t, ts.Client(), ts.URL+"/v1/plan", hybridBody(""))
			codes[i] = resp.StatusCode
			bodies[i] = data
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if codes[i] != 200 {
			t.Fatalf("request %d: status %d: %s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("request %d returned a different plan", i)
		}
	}
}
