// Package server is the ground-segment mission-planning service: a
// stdlib-only net/http JSON front end over the one-time transformation
// pipeline (kodan.System), the selection-logic generator, and the orbital
// simulator. It is the serving layer the paper's workflow implies — the
// transformation runs on the ground, and many consumers (operators,
// uplink schedulers, capacity planners) query its outputs.
//
// Because a transformation is seconds-expensive and fully deterministic
// (seeded SplitMix64), the server is built around three production
// mechanisms:
//
//   - a single-flight result cache keyed by (seed, app) for transforms and
//     (seed, app, target, deployment) for plans, so N identical concurrent
//     requests trigger exactly one computation and repeat requests are
//     served from memory;
//   - a bounded worker pool with a bounded wait queue for the expensive
//     computations, returning 429 + Retry-After under saturation instead
//     of unbounded latency;
//   - per-request context cancellation: a client that disconnects or
//     times out propagates — via reference-counted cache entries — into
//     the training loops, which check their context between epochs.
//
// Ops surface: GET /healthz (liveness), GET /readyz (serving/draining),
// GET /metrics (JSON counters: request counts, latency percentiles, cache
// hits/misses, pool gauges, transform lifecycle). Shutdown drains
// in-flight requests before closing the listener.
package server

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"regexp"
	"sync"
	"sync/atomic"
	"time"

	"kodan"
	"kodan/internal/admission"
	"kodan/internal/fault"
	"kodan/internal/shardcache"
	"kodan/internal/telemetry"
	"kodan/internal/xrand"
)

// TransformFunc runs the one-time transformation of one application on a
// built system; quantized selects the int8 inference variant. The default
// is (*kodan.System).TransformVariantCtx; tests substitute counting or
// blocking implementations.
type TransformFunc func(ctx context.Context, sys *kodan.System, appIndex int, quantized bool) (*kodan.Application, error)

// NewSystemFunc builds the transformation workspace for a seed. The
// default wires Config.TransformConfig into kodan.NewSystemCtx.
type NewSystemFunc func(ctx context.Context, cfg kodan.TransformConfig) (*kodan.System, error)

// TransformBatchFunc runs the one-time transformation for several
// applications of the same (seed, variant) in one batched pipeline pass,
// returning one result per requested index in order. The default loops
// Config.Transform (equivalently (*kodan.System).TransformBatchVariantCtx,
// whose per-tile inference already amortizes through PredictBatch); load
// tests substitute cost models with an explicit fixed+marginal split.
type TransformBatchFunc func(ctx context.Context, sys *kodan.System, appIndexes []int, quantized bool) ([]*kodan.Application, error)

// Config sizes the server.
type Config struct {
	// Seed is the default transformation seed when a request omits one.
	Seed uint64
	// Workers bounds concurrently running transforms (default 2).
	Workers int
	// QueueDepth bounds transforms waiting for a worker (default 8).
	QueueDepth int
	// Timeout is the per-request ceiling for the expensive endpoints
	// (default 120s). A request's own timeoutMs may shorten it.
	Timeout time.Duration
	// MetricsWindow is the per-route latency reservoir size (default 512).
	MetricsWindow int
	// TransformConfig maps a seed to the transformation sizing (default
	// kodan.DefaultTransformConfig).
	TransformConfig func(seed uint64) kodan.TransformConfig
	// NewSystem and Transform override the underlying pipeline (tests).
	NewSystem NewSystemFunc
	Transform TransformFunc
	// SimEpoch anchors the orbital simulation (default 2023-03-25 UTC,
	// the reproduction's reference epoch); fixing it keeps every
	// response deterministic for a given request.
	SimEpoch time.Time
	// Logf, when set, receives one line per served request. Superseded by
	// Logger; kept for callers that only want printf-style lines.
	Logf func(format string, args ...interface{})
	// Logger, when set, receives structured request logs (one record per
	// served request, carrying the request ID) and lifecycle events, and
	// is threaded through request contexts so the layers below can log
	// with the same correlation fields.
	Logger *slog.Logger
	// Tracer, when set, records a span per request plus the pool-wait,
	// transform, and simulation spans underneath, each annotated with the
	// request ID that triggered the work.
	Tracer *telemetry.Tracer
	// Chaos, when set, injects seeded latency and transient failures into
	// the transform path for resilience testing (see internal/fault).
	Chaos *fault.Chaos
	// RetryAttempts bounds total transform attempts when a transient
	// (injected) failure occurs: 0 means the default of 3, negative
	// disables retry.
	RetryAttempts int
	// RetryBackoff is the delay before the first retry, doubling each
	// attempt (default 50ms).
	RetryBackoff time.Duration
	// BreakerThreshold is how many consecutive transform failures open
	// the circuit breaker: 0 means the default of 5, negative disables
	// the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects requests before
	// admitting a half-open probe (default 5s).
	BreakerCooldown time.Duration
	// CacheShards is how many independent shards the result cache is split
	// into by consistent hashing (default 4). Responses are byte-identical
	// at any shard count; sharding only reduces lock contention.
	CacheShards int
	// CacheEntries bounds completed cache entries across shards, evicting
	// least-recently-used entries beyond it (default 1024; negative means
	// unbounded, the pre-sharding behavior).
	CacheEntries int
	// TenantRate enables per-tenant token-bucket admission on the expensive
	// POST endpoints at this many requests/second per tenant (0 disables —
	// the default, so library users opt in).
	TenantRate float64
	// TenantBurst is the token-bucket depth (default max(1, 2*TenantRate)).
	TenantBurst float64
	// TenantWeights maps tenant names to fair-queueing weights (default 1
	// each): a weight-3 tenant gets 3x the grants of a weight-1 tenant when
	// both queue, and neither can starve the other.
	TenantWeights map[string]float64
	// MaxTenants bounds distinct tenant state — buckets, fair queues,
	// per-tenant metrics (default admission.DefaultMaxTenants); surplus
	// tenants share one overflow identity.
	MaxTenants int
	// RetryAfterJitterMax adds a seeded random 0..N seconds to every
	// Retry-After header, desynchronizing client retry herds (default 0:
	// no jitter, exact headers — tests rely on that).
	RetryAfterJitterMax int
	// JitterSeed seeds the Retry-After jitter stream (default Seed), so a
	// seeded server emits a reproducible jitter sequence.
	JitterSeed uint64
	// BatchWindow enables transform batching: a cache-miss transform waits
	// up to this long for same-(seed, variant) misses to coalesce into one
	// batched pipeline pass through a single worker slot (0 disables — the
	// default).
	BatchWindow time.Duration
	// BatchMax flushes a batch early once it holds this many transforms
	// (default 8).
	BatchMax int
	// TransformBatch overrides the batched transform (tests, load models).
	TransformBatch TransformBatchFunc
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.Timeout <= 0 {
		c.Timeout = 120 * time.Second
	}
	if c.TransformConfig == nil {
		c.TransformConfig = kodan.DefaultTransformConfig
	}
	if c.NewSystem == nil {
		c.NewSystem = kodan.NewSystemCtx
	}
	if c.Transform == nil {
		c.Transform = func(ctx context.Context, sys *kodan.System, appIndex int, quantized bool) (*kodan.Application, error) {
			return sys.TransformVariantCtx(ctx, appIndex, quantized)
		}
	}
	if c.SimEpoch.IsZero() {
		c.SimEpoch = time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC)
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 4
	}
	switch {
	case c.CacheEntries == 0:
		c.CacheEntries = 1024
	case c.CacheEntries < 0:
		c.CacheEntries = 0 // unbounded
	}
	if c.RetryAfterJitterMax < 0 {
		c.RetryAfterJitterMax = 0
	}
	if c.JitterSeed == 0 {
		c.JitterSeed = c.Seed
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 8
	}
	return c
}

// Server is the mission-planning service. Create with New, serve with
// ListenAndServe or Serve, stop with Shutdown (graceful) or Close.
type Server struct {
	cfg Config

	baseCtx    context.Context
	baseCancel context.CancelFunc

	cache   *Cache
	pool    *admission.FairPool
	limiter *admission.Limiter
	tenants *admission.TenantMetrics
	jitter  *jitterSource
	batcher *batcher
	metrics *Metrics
	probe   telemetry.Probe
	logger  *slog.Logger
	breaker *Breaker

	handler http.Handler
	httpSrv *http.Server

	draining atomic.Bool
}

// jitterSource is a mutex-wrapped seeded stream for Retry-After jitter:
// deterministic for a seeded server, shared across handlers.
type jitterSource struct {
	mu  sync.Mutex
	rng *xrand.Rand
	max int // inclusive upper bound in seconds; 0 disables
}

// seconds returns the next jitter amount in [0, max] seconds.
func (j *jitterSource) seconds() int {
	if j == nil || j.max == 0 {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rng.Intn(j.max + 1)
}

// New builds a server from the configuration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	metrics := NewMetrics(cfg.MetricsWindow, nil)
	probe := telemetry.Probe{Metrics: metrics.Registry(), Trace: cfg.Tracer}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	base, cancel := context.WithCancel(context.Background())
	// Cached computations derive their contexts from base, so the probe
	// installed here makes every transform, simulation, and policy sweep
	// record into the server's registry — their per-stage counters and
	// histograms surface in /metrics alongside the serving counters.
	base = telemetry.WithProbe(base, probe)
	base = telemetry.WithLogger(base, logger)
	s := &Server{
		cfg:        cfg,
		baseCtx:    base,
		baseCancel: cancel,
		cache: shardcache.New(base, shardcache.Options{
			Shards:     cfg.CacheShards,
			MaxEntries: cfg.CacheEntries,
			Scope:      metrics.Registry().Scope("server.cache"),
		}),
		pool: admission.NewFairPool(admission.FairPoolOptions{
			Workers:    cfg.Workers,
			QueueDepth: cfg.QueueDepth,
			Weights:    cfg.TenantWeights,
			MaxTenants: cfg.MaxTenants,
		}),
		limiter: admission.NewLimiter(admission.LimiterOptions{
			Rate:       cfg.TenantRate,
			Burst:      cfg.TenantBurst,
			MaxTenants: cfg.MaxTenants,
		}),
		tenants: admission.NewTenantMetrics(metrics.Registry().Scope("server.tenant"), cfg.MaxTenants),
		jitter:  &jitterSource{rng: xrand.New(cfg.JitterSeed), max: cfg.RetryAfterJitterMax},
		metrics: metrics,
		probe:   probe,
		logger:  logger,
		breaker: NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
	}
	// Every transform goes through the resilience wrapper: chaos strikes
	// (when configured), bounded retry for transient failures, and the
	// circuit breaker. Pass-through in the default configuration.
	s.cfg.Transform = s.resilientTransform(cfg.Transform)
	if s.cfg.TransformBatch == nil {
		// Default batched transform: the resilient per-app transform in a
		// loop (each member still gets retry/breaker accounting).
		s.cfg.TransformBatch = func(ctx context.Context, sys *kodan.System, appIndexes []int, quantized bool) ([]*kodan.Application, error) {
			out := make([]*kodan.Application, len(appIndexes))
			for i, a := range appIndexes {
				app, err := s.cfg.Transform(ctx, sys, a, quantized)
				if err != nil {
					return nil, err
				}
				out[i] = app
			}
			return out, nil
		}
	}
	if cfg.BatchWindow > 0 {
		s.batcher = newBatcher(s, cfg.BatchWindow, cfg.BatchMax)
	}
	s.handler = s.routes()
	s.httpSrv = &http.Server{Handler: s.handler}
	return s
}

// Registry exposes the server's shared telemetry registry, so callers
// (the flight recorder, the debug listener) can sample or export the same
// collector /metrics serves.
func (s *Server) Registry() *telemetry.Registry { return s.metrics.Registry() }

// Handler returns the server's HTTP handler (for httptest and embedding).
func (s *Server) Handler() http.Handler { return s.handler }

// Metrics exposes the collector (read-only use).
func (s *Server) Metrics() Snapshot { return s.metrics.Snapshot(s.cache, s.pool) }

// ListenAndServe binds addr and serves until Shutdown or a listener
// error. It returns http.ErrServerClosed after a clean shutdown.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Serve serves on an existing listener (the listener is closed on
// shutdown).
func (s *Server) Serve(l net.Listener) error {
	return s.httpSrv.Serve(l)
}

// Shutdown gracefully stops the server: /readyz starts failing, the
// listener closes to new connections, and in-flight requests are given
// until ctx expires to complete. Any computation still running after the
// drain (e.g. a cached transform with no remaining waiter) is cancelled.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.logger.Info("drain started")
	start := time.Now()
	err := s.httpSrv.Shutdown(ctx)
	s.baseCancel()
	s.logger.Info("drain finished", "drainMs", time.Since(start).Milliseconds(), "clean", err == nil)
	return err
}

// Close stops immediately without draining.
func (s *Server) Close() error {
	s.draining.Store(true)
	s.baseCancel()
	return s.httpSrv.Close()
}

// routes assembles the mux with the metrics/logging middleware on every
// route; the expensive POST endpoints additionally pass the per-tenant
// token-bucket admission gate.
func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	mux.Handle("GET /readyz", s.instrument("/readyz", s.handleReadyz))
	mux.Handle("GET /metrics", s.instrument("/metrics", s.handleMetrics))
	mux.Handle("GET /v1/catalog", s.instrument("/v1/catalog", s.handleCatalog))
	mux.Handle("POST /v1/transform", s.instrument("/v1/transform", s.admitted(s.handleTransform)))
	mux.Handle("POST /v1/plan", s.instrument("/v1/plan", s.admitted(s.handlePlan)))
	mux.Handle("POST /v1/simulate", s.instrument("/v1/simulate", s.admitted(s.handleSimulate)))
	return mux
}

// DefaultTenant is the identity assigned to requests without a
// well-formed X-Kodan-Tenant header.
const DefaultTenant = "anon"

// TenantHeader carries the caller's tenant identity.
const TenantHeader = "X-Kodan-Tenant"

// tenantPattern is what an inbound tenant name must match to be used;
// anything else (or nothing) becomes DefaultTenant, so header junk cannot
// mint unbounded metric names or queues.
var tenantPattern = regexp.MustCompile(`^[A-Za-z0-9_.-]{1,32}$`)

// tenantKey carries the resolved tenant through request contexts.
type tenantKey struct{}

// tenantOf returns the tenant resolved by instrument (DefaultTenant when
// the context never passed through it, e.g. direct handler tests).
func tenantOf(ctx context.Context) string {
	if t, ok := ctx.Value(tenantKey{}).(string); ok {
		return t
	}
	return DefaultTenant
}

// admitted wraps an expensive handler with the per-tenant token bucket.
// With no TenantRate configured the limiter is nil and every request
// passes. Rejections are 429s whose Retry-After covers the bucket refill
// (plus jitter, when configured).
func (s *Server) admitted(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tenant := tenantOf(r.Context())
		if ok, retryAfter := s.limiter.Allow(tenant); !ok {
			s.tenants.Rejected(tenant)
			w.Header().Set("Retry-After", s.retryAfter(retryAfter))
			writeJSONError(w, http.StatusTooManyRequests,
				fmt.Sprintf("tenant %q over admission rate", tenant))
			return
		}
		s.tenants.Admitted(tenant)
		h(w, r)
	}
}

// requestIDPattern is what an inbound X-Request-ID must match to be
// reused; anything else (or nothing) gets a freshly minted ID, so log
// injection via the header is impossible and IDs stay greppable.
var requestIDPattern = regexp.MustCompile(`^[A-Za-z0-9_.-]{1,64}$`)

// instrument wraps a handler with panic recovery, latency/status
// accounting, request-ID issuance, span tracing, and structured logging.
// The request ID — reused from a well-formed inbound X-Request-ID or
// minted here — is echoed in the X-Request-ID response header, stamped on
// the request's slog records, and carried by the context so every span
// started beneath (pool wait, transform, simulation) annotates itself
// with it.
func (s *Server) instrument(route string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqID := r.Header.Get("X-Request-ID")
		if !requestIDPattern.MatchString(reqID) {
			reqID = telemetry.NewRequestID()
		}
		w.Header().Set("X-Request-ID", reqID)
		tenant := r.Header.Get(TenantHeader)
		if !tenantPattern.MatchString(tenant) {
			tenant = DefaultTenant
		}
		s.tenants.Request(tenant)

		ctx := telemetry.WithProbe(r.Context(), s.probe)
		ctx = context.WithValue(ctx, tenantKey{}, tenant)
		ctx = telemetry.WithRequestID(ctx, reqID)
		ctx = telemetry.WithLogger(ctx, s.logger)
		ctx, span := telemetry.StartSpan(ctx, "http."+route)
		r = r.WithContext(ctx)

		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			if rec := recover(); rec != nil {
				if !sw.wrote {
					writeJSONError(sw, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", rec))
				}
			}
			d := time.Since(start)
			s.metrics.Observe(route, sw.status, d)
			span.Set("status", fmt.Sprint(sw.status))
			span.End()
			s.logger.LogAttrs(ctx, slog.LevelInfo, "request",
				slog.String(telemetry.RequestIDAttr, reqID),
				slog.String("method", r.Method),
				slog.String("route", route),
				slog.String("tenant", tenant),
				slog.Int("status", sw.status),
				slog.Int64("durMs", d.Milliseconds()),
			)
			if s.cfg.Logf != nil {
				s.cfg.Logf("%s %s -> %d in %v", r.Method, r.URL.Path, sw.status, d.Round(time.Millisecond))
			}
		}()
		h(sw, r)
	})
}

// statusWriter captures the response status for metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}
