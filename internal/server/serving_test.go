package server

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kodan"
)

// stubPipeline returns NewSystem/Transform overrides that serve one
// prebuilt tiny system and application regardless of seed, so tests can
// mint distinct cache keys (distinct seeds) without paying a real
// transformation per key. onNewSystem, when set, observes each workspace
// build (which runs while holding a worker slot) with the request's seed.
func stubPipeline(t *testing.T, onNewSystem func(seed uint64)) (NewSystemFunc, TransformFunc) {
	t.Helper()
	sys, err := newTestSystem(tinyTransformConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	app, err := sys.TransformVariantCtx(context.Background(), 1, false)
	if err != nil {
		t.Fatal(err)
	}
	newSystem := func(ctx context.Context, c kodan.TransformConfig) (*kodan.System, error) {
		if onNewSystem != nil {
			onNewSystem(c.Seed)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return sys, nil
	}
	transform := func(ctx context.Context, _ *kodan.System, _ int, _ bool) (*kodan.Application, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return app, nil
	}
	return newSystem, transform
}

func transformBody(seed uint64, app int) string {
	return fmt.Sprintf(`{"seed":%d,"app":%d}`, seed, app)
}

// postTenant posts body with an explicit tenant identity.
func postTenant(t *testing.T, ts *httptest.Server, path, tenant, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck
	return resp, buf.Bytes()
}

// TestShardCountByteIdentical runs the same request stream against
// servers sharded 1, 4, and 16 ways and requires byte-identical
// responses: sharding may only move lock contention, never results.
func TestShardCountByteIdentical(t *testing.T) {
	stream := []struct{ path, body string }{
		{"/v1/plan", planBody(1)},
		{"/v1/plan", planBody(2)},
		{"/v1/transform", `{"app":1}`},
		{"/v1/plan", planBody(1)}, // replay: must hit, identically
		{"/v1/transform", `{"app":1}`},
	}
	var want [][]byte
	for _, shards := range []int{1, 4, 16} {
		cfg := testConfig()
		cfg.CacheShards = shards
		s := New(cfg)
		ts := httptest.NewServer(s.Handler())
		bodies := make([][]byte, len(stream))
		for i, req := range stream {
			resp, data := post(t, ts.Client(), ts.URL+req.path, req.body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("shards=%d %s: status %d (%s)", shards, req.path, resp.StatusCode, data)
			}
			bodies[i] = data
		}
		ts.Close()
		s.Close()
		if want == nil {
			want = bodies
			continue
		}
		for i := range stream {
			if !bytes.Equal(bodies[i], want[i]) {
				t.Errorf("shards=%d: response %d (%s) differs from single-shard baseline", shards, i, stream[i].path)
			}
		}
	}
}

// TestCacheEvictionBound pins the LRU satellite: with CacheEntries set,
// completed entries stay bounded, evictions are counted, and an evicted
// key recomputes correctly on the next request.
func TestCacheEvictionBound(t *testing.T) {
	var builds atomic.Int64
	cfg := testConfig()
	cfg.CacheShards = 1
	cfg.CacheEntries = 2
	cfg.NewSystem, cfg.Transform = stubPipeline(t, func(uint64) { builds.Add(1) })
	s := New(cfg)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Each distinct seed creates two entries (workspace + application), so
	// three seeds churn a 2-entry cache hard.
	for _, seed := range []uint64{101, 102, 103} {
		resp, data := post(t, ts.Client(), ts.URL+"/v1/transform", transformBody(seed, 1))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: status %d (%s)", seed, resp.StatusCode, data)
		}
	}
	m := s.Metrics()
	if m.Cache.Capacity != 2 {
		t.Fatalf("cache capacity = %d, want 2", m.Cache.Capacity)
	}
	if m.Cache.Entries > 2 {
		t.Fatalf("cache holds %d completed entries, over the bound of 2", m.Cache.Entries)
	}
	if m.Cache.Evictions == 0 {
		t.Fatal("no evictions counted after churning a bounded cache")
	}
	// Seed 101's entries are long evicted: the request must recompute (a
	// fresh workspace build), not fail.
	before := builds.Load()
	resp, data := post(t, ts.Client(), ts.URL+"/v1/transform", transformBody(101, 1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evicted replay: status %d (%s)", resp.StatusCode, data)
	}
	if resp.Header.Get("X-Kodan-Cache") != "miss" {
		t.Errorf("evicted replay cache source %q, want miss", resp.Header.Get("X-Kodan-Cache"))
	}
	if builds.Load() == before {
		t.Error("evicted key served without recomputation")
	}
}

// TestWeightedFairServingNoStarvation floods the pool from a heavy tenant
// and checks the fair queue's grant order: a light tenant's requests are
// interleaved by virtual finish time instead of waiting behind the whole
// heavy backlog.
func TestWeightedFairServingNoStarvation(t *testing.T) {
	var mu sync.Mutex
	var order []uint64
	gate := make(chan struct{})
	cfg := testConfig()
	cfg.Workers = 1
	cfg.QueueDepth = 8
	newSystem, transform := stubPipeline(t, nil)
	cfg.Transform = transform
	cfg.NewSystem = func(ctx context.Context, c kodan.TransformConfig) (*kodan.System, error) {
		mu.Lock()
		order = append(order, c.Seed)
		n := len(order)
		mu.Unlock()
		if n == 1 {
			<-gate // hold the only worker until the full backlog is queued
		}
		return newSystem(ctx, c)
	}
	s := New(cfg)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	send := func(tenant string, seed uint64) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, data := postTenant(t, ts, "/v1/transform", tenant, transformBody(seed, 1))
			if resp.StatusCode != http.StatusOK {
				t.Errorf("tenant %s seed %d: status %d (%s)", tenant, seed, resp.StatusCode, data)
			}
		}()
	}
	// The gate holder occupies the worker; then heavy enqueues five
	// waiters before light's two, each arrival confirmed so enqueue order
	// (and therefore the virtual-time grant order) is deterministic.
	send("heavy", 100)
	waitForCond(t, func() bool {
		mu.Lock()
		holderIn := len(order) == 1
		mu.Unlock()
		return holderIn && s.Metrics().Pool.InFlight == 1
	})
	queued := 0
	for _, w := range []struct {
		tenant string
		seed   uint64
	}{{"heavy", 101}, {"heavy", 102}, {"heavy", 103}, {"heavy", 104}, {"heavy", 105}, {"light", 201}, {"light", 202}} {
		send(w.tenant, w.seed)
		queued++
		q := queued
		waitForCond(t, func() bool { return s.Metrics().Pool.Queued == q })
	}
	close(gate)
	wg.Wait()

	mu.Lock()
	got := append([]uint64(nil), order...)
	mu.Unlock()
	// Equal weights, ties to the lexicographically smaller tenant: grants
	// interleave heavy/light by finish tag 1h 1l 2h 2l 3h 4h 5h.
	want := []uint64{100, 101, 201, 102, 202, 103, 104, 105}
	if len(got) != len(want) {
		t.Fatalf("served %d transforms, want %d (%v)", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant order %v, want %v (light tenant starved or fair order broken)", got, want)
		}
	}
}

// waitForCond polls cond for up to 5 seconds.
func waitForCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}

// TestTenantAdmissionTokenBucket pins the front-door limiter: a tenant
// over its rate gets 429 + Retry-After without touching the pipeline,
// while other tenants are unaffected, and the per-tenant counters land in
// the registry.
func TestTenantAdmissionTokenBucket(t *testing.T) {
	cfg := testConfig()
	cfg.TenantRate = 0.001 // trickle refill: effectively burst-only
	cfg.TenantBurst = 2
	cfg.NewSystem, cfg.Transform = stubPipeline(t, nil)
	s := New(cfg)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 2; i++ {
		resp, data := postTenant(t, ts, "/v1/transform", "alpha", transformBody(1, 1))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("alpha burst request %d: status %d (%s)", i, resp.StatusCode, data)
		}
	}
	resp, data := postTenant(t, ts, "/v1/transform", "alpha", transformBody(1, 1))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("alpha over-rate: status %d (%s), want 429", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("admission 429 without Retry-After")
	}
	if !strings.Contains(string(data), "alpha") {
		t.Errorf("rejection body %q does not name the tenant", data)
	}
	// A different tenant has its own bucket.
	resp, data = postTenant(t, ts, "/v1/transform", "beta", transformBody(1, 1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("beta: status %d (%s)", resp.StatusCode, data)
	}
	reg := s.Registry()
	if got := reg.Counter("server.tenant.alpha.rejected").Load(); got != 1 {
		t.Errorf("alpha rejected counter = %d, want 1", got)
	}
	if got := reg.Counter("server.tenant.alpha.admitted").Load(); got != 2 {
		t.Errorf("alpha admitted counter = %d, want 2", got)
	}
	if got := reg.Counter("server.tenant.beta.admitted").Load(); got != 1 {
		t.Errorf("beta admitted counter = %d, want 1", got)
	}
}

// TestRetryAfterJitterDeterministic pins the jitter satellite: two
// servers with the same JitterSeed emit the same Retry-After sequence
// under sequential saturation rejections, values within [1, 1+max].
func TestRetryAfterJitterDeterministic(t *testing.T) {
	sequence := func() []string {
		gate := make(chan struct{})
		started := make(chan struct{}, 1)
		cfg := testConfig()
		cfg.Workers = 1
		cfg.QueueDepth = 1
		cfg.RetryAfterJitterMax = 3
		cfg.JitterSeed = 42
		newSystem, transform := stubPipeline(t, nil)
		cfg.Transform = transform
		cfg.NewSystem = func(ctx context.Context, c kodan.TransformConfig) (*kodan.System, error) {
			if c.Seed == 1 {
				started <- struct{}{}
				<-gate
			}
			return newSystem(ctx, c)
		}
		s := New(cfg)
		defer s.Close()
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()

		// One request holds the worker, one fills the depth-1 queue; every
		// later arrival is rejected immediately with a jittered Retry-After.
		var done sync.WaitGroup
		for _, seed := range []uint64{1, 2} {
			done.Add(1)
			go func(seed uint64) {
				defer done.Done()
				post(t, ts.Client(), ts.URL+"/v1/transform", transformBody(seed, 1))
			}(seed)
			if seed == 1 {
				<-started
			} else {
				waitForCond(t, func() bool { return s.Metrics().Pool.Queued == 1 })
			}
		}
		var got []string
		for i := 0; i < 6; i++ {
			resp, data := post(t, ts.Client(), ts.URL+"/v1/transform", transformBody(uint64(100+i), 1))
			if resp.StatusCode != http.StatusTooManyRequests {
				t.Fatalf("saturated request %d: status %d (%s)", i, resp.StatusCode, data)
			}
			ra := resp.Header.Get("Retry-After")
			var secs int
			fmt.Sscanf(ra, "%d", &secs) //nolint:errcheck
			if secs < 1 || secs > 4 {
				t.Fatalf("Retry-After %q outside [1, 4]", ra)
			}
			got = append(got, ra)
		}
		close(gate)
		done.Wait()
		return got
	}
	a, b := sequence(), sequence()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("jitter sequences diverge at %d: %v vs %v", i, a, b)
		}
	}
}

// TestBatchCoalescing pins the tentpole's batching half with the real
// tiny pipeline: concurrent misses for apps sharing a workspace coalesce
// into fewer batched passes, and every response is byte-identical to the
// unbatched server's.
func TestBatchCoalescing(t *testing.T) {
	baseline := map[int][]byte{}
	{
		cfg := testConfig()
		s := New(cfg)
		ts := httptest.NewServer(s.Handler())
		for _, app := range []int{1, 2, 3} {
			resp, data := post(t, ts.Client(), ts.URL+"/v1/transform", fmt.Sprintf(`{"app":%d}`, app))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("baseline app %d: status %d (%s)", app, resp.StatusCode, data)
			}
			baseline[app] = data
		}
		ts.Close()
		s.Close()
	}

	var batchCalls, batchedApps atomic.Int64
	cfg := testConfig()
	cfg.BatchWindow = 150 * time.Millisecond
	cfg.BatchMax = 8
	cfg.TransformBatch = func(ctx context.Context, sys *kodan.System, appIndexes []int, quantized bool) ([]*kodan.Application, error) {
		batchCalls.Add(1)
		batchedApps.Add(int64(len(appIndexes)))
		return sys.TransformBatchVariantCtx(ctx, appIndexes, quantized)
	}
	s := New(cfg)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	bodies := make(map[int][]byte)
	var mu sync.Mutex
	for _, app := range []int{1, 2, 3} {
		wg.Add(1)
		go func(app int) {
			defer wg.Done()
			resp, data := post(t, ts.Client(), ts.URL+"/v1/transform", fmt.Sprintf(`{"app":%d}`, app))
			if resp.StatusCode != http.StatusOK {
				t.Errorf("batched app %d: status %d (%s)", app, resp.StatusCode, data)
				return
			}
			mu.Lock()
			bodies[app] = data
			mu.Unlock()
		}(app)
	}
	wg.Wait()

	for app, want := range baseline {
		if !bytes.Equal(bodies[app], want) {
			t.Errorf("app %d: batched response differs from unbatched baseline", app)
		}
	}
	if calls := batchCalls.Load(); calls >= 3 {
		t.Errorf("batching ran %d passes for 3 concurrent same-workspace misses, want coalescing", calls)
	}
	if got := batchedApps.Load(); got != 3 {
		t.Errorf("batched %d member transforms, want 3", got)
	}
	reg := s.Registry()
	if got := reg.Counter("server.batch.batched").Load(); got != 3 {
		t.Errorf("server.batch.batched = %d, want 3", got)
	}
	if reg.Counter("server.batch.flushes").Load() == 0 {
		t.Error("server.batch.flushes never incremented")
	}

	// Replays are cache hits — batching must not bypass the cache.
	resp, data := post(t, ts.Client(), ts.URL+"/v1/transform", `{"app":1}`)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Kodan-Cache") != "hit" {
		t.Errorf("replay after batch: status %d source %q (%s)", resp.StatusCode, resp.Header.Get("X-Kodan-Cache"), data)
	}
}

// TestMetricsExposesServingFields pins the /metrics additions: shard
// count, capacity, evictions, and the pool's JSON shape.
func TestMetricsExposesServingFields(t *testing.T) {
	cfg := testConfig()
	cfg.CacheShards = 4
	cfg.CacheEntries = 100
	cfg.NewSystem, cfg.Transform = stubPipeline(t, nil)
	s := New(cfg)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post(t, ts.Client(), ts.URL+"/v1/transform", transformBody(1, 1))
	var doc struct {
		Cache struct {
			Shards    int   `json:"shards"`
			Capacity  int   `json:"capacity"`
			Evictions int64 `json:"evictions"`
			Hits      int64 `json:"hits"`
		} `json:"cache"`
		Pool struct {
			Workers    int `json:"workers"`
			QueueDepth int `json:"queueDepth"`
		} `json:"pool"`
	}
	resp := getJSON(t, ts.URL+"/metrics", &doc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if doc.Cache.Shards != 4 || doc.Cache.Capacity != 100 {
		t.Errorf("cache shards/capacity = %d/%d, want 4/100", doc.Cache.Shards, doc.Cache.Capacity)
	}
	if doc.Pool.Workers != 2 {
		t.Errorf("pool workers = %d, want 2", doc.Pool.Workers)
	}
}
