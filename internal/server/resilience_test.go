package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"kodan"
	"kodan/internal/fault"
)

// flakyTransform fails with the injected-fault error for the first
// failures calls, then delegates to the real pipeline.
func flakyTransform(failures int64) (TransformFunc, *atomic.Int64) {
	var calls atomic.Int64
	return func(ctx context.Context, sys *kodan.System, appIndex int, quantized bool) (*kodan.Application, error) {
		if calls.Add(1) <= failures {
			return nil, fault.ErrInjected
		}
		return sys.TransformVariantCtx(ctx, appIndex, quantized)
	}, &calls
}

// decodeError asserts the uniform JSON error body and returns its message.
func decodeError(t *testing.T, resp *http.Response, body []byte) string {
	t.Helper()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("error content type %q, want application/json", ct)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("error body is not JSON: %v (%s)", err, body)
	}
	if eb.Error == "" {
		t.Errorf("error body has empty message: %s", body)
	}
	return eb.Error
}

func TestTransientFaultRetriedToSuccess(t *testing.T) {
	cfg := testConfig()
	cfg.RetryBackoff = time.Millisecond
	tf, calls := flakyTransform(2)
	cfg.Transform = tf
	s := New(cfg)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := post(t, ts.Client(), ts.URL+"/v1/plan", planBody(4))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s), want 200 after retries", resp.StatusCode, body)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("transform called %d times, want 3 (two injected failures + success)", got)
	}
	snap := s.Registry().Snapshot()
	if snap.Counters["server.resilience.retries"] != 2 {
		t.Errorf("retries counter = %d, want 2", snap.Counters["server.resilience.retries"])
	}
	if snap.Counters["server.resilience.retry_success"] != 1 {
		t.Errorf("retry_success counter = %d, want 1", snap.Counters["server.resilience.retry_success"])
	}
}

func TestChaosStrikesAreRetried(t *testing.T) {
	cfg := testConfig()
	cfg.RetryBackoff = time.Millisecond
	// A 40% error rate across 3 attempts fails the whole request ~6% of
	// the time per draw sequence; the seeded striker makes the outcome
	// fixed, and the retry budget absorbs individual strikes.
	cfg.Chaos = fault.NewChaos(11, 0.4, 0, 0)
	cfg.BreakerThreshold = 100 // strikes must not trip the breaker mid-test
	s := New(cfg)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ok := 0
	for i := 0; i < 4; i++ {
		resp, _ := post(t, ts.Client(), ts.URL+"/v1/plan", planBody(1+i))
		if resp.StatusCode == http.StatusOK {
			ok++
		} else if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("request %d: status %d, want 200 or 503", i, resp.StatusCode)
		}
	}
	if ok == 0 {
		t.Fatal("no request survived a 40% chaos error rate with 3 attempts")
	}
	snap := s.Registry().Snapshot()
	if snap.Counters["server.resilience.injected"] == 0 {
		t.Error("chaos never struck at a 40% error rate")
	}
}

func TestSustainedFaultsTripBreaker(t *testing.T) {
	cfg := testConfig()
	cfg.RetryAttempts = -1 // isolate the breaker from the retry loop
	cfg.BreakerThreshold = 3
	cfg.BreakerCooldown = time.Minute
	cfg.Transform = func(context.Context, *kodan.System, int, bool) (*kodan.Application, error) {
		return nil, fault.ErrInjected
	}
	s := New(cfg)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Three failures open the breaker (distinct apps: errors are never
	// cached, but distinct keys keep the single-flight out of the way).
	for i := 0; i < 3; i++ {
		resp, body := post(t, ts.Client(), ts.URL+"/v1/plan", planBody(1+i))
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("failure %d: status %d (%s), want 503", i, resp.StatusCode, body)
		}
		decodeError(t, resp, body)
	}
	if got := s.breaker.State(); got != "open" {
		t.Fatalf("breaker state %q after %d failures, want open", got, 3)
	}

	resp, body := post(t, ts.Client(), ts.URL+"/v1/plan", planBody(4))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%s), want 503 from the open breaker", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") != "60" {
		t.Errorf("Retry-After %q, want %q (the cooldown)", resp.Header.Get("Retry-After"), "60")
	}
	if msg := decodeError(t, resp, body); !strings.Contains(msg, "circuit breaker open") {
		t.Errorf("breaker rejection message %q", msg)
	}
	snap := s.Registry().Snapshot()
	if snap.Counters["server.resilience.breaker_tripped"] != 1 {
		t.Errorf("breaker_tripped = %d, want 1", snap.Counters["server.resilience.breaker_tripped"])
	}
	if snap.Counters["server.resilience.breaker_rejected"] == 0 {
		t.Error("breaker_rejected not counted")
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	cfg := testConfig()
	cfg.RetryAttempts = -1
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = 30 * time.Millisecond
	tf, _ := flakyTransform(2)
	cfg.Transform = tf
	s := New(cfg)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 2; i++ {
		resp, _ := post(t, ts.Client(), ts.URL+"/v1/plan", planBody(1+i))
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("failure %d: status %d, want 503", i, resp.StatusCode)
		}
	}
	if got := s.breaker.State(); got != "open" {
		t.Fatalf("breaker state %q, want open", got)
	}

	// After the cooldown the next request is the half-open probe; the
	// transform is healthy again, so it closes the breaker.
	time.Sleep(40 * time.Millisecond)
	resp, body := post(t, ts.Client(), ts.URL+"/v1/plan", planBody(4))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("probe: status %d (%s), want 200", resp.StatusCode, body)
	}
	if got := s.breaker.State(); got != "closed" {
		t.Fatalf("breaker state %q after successful probe, want closed", got)
	}
	resp, body = post(t, ts.Client(), ts.URL+"/v1/plan", planBody(5))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery: status %d (%s), want 200", resp.StatusCode, body)
	}
	snap := s.Registry().Snapshot()
	if snap.Counters["server.resilience.breaker_recovered"] != 1 {
		t.Errorf("breaker_recovered = %d, want 1", snap.Counters["server.resilience.breaker_recovered"])
	}
}

func TestBreakerUnit(t *testing.T) {
	b := NewBreaker(2, time.Hour)
	clock := time.Date(2023, 3, 25, 0, 0, 0, 0, time.UTC)
	b.now = func() time.Time { return clock }

	if !b.Allow() {
		t.Fatal("closed breaker rejected")
	}
	b.Record(false)
	if tripped, _ := b.Record(false); !tripped {
		t.Fatal("second failure did not trip")
	}
	if b.Allow() {
		t.Fatal("open breaker admitted before cooldown")
	}
	clock = clock.Add(2 * time.Hour)
	if !b.Allow() {
		t.Fatal("breaker did not admit the half-open probe after cooldown")
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	// Probe fails: full cooldown again.
	b.Record(false)
	if b.Allow() {
		t.Fatal("breaker admitted right after a failed probe")
	}
	clock = clock.Add(2 * time.Hour)
	if !b.Allow() {
		t.Fatal("no probe after second cooldown")
	}
	if _, recovered := b.Record(true); !recovered {
		t.Fatal("successful probe did not report recovery")
	}
	if got := b.State(); got != "closed" {
		t.Fatalf("state %q after recovery, want closed", got)
	}

	var nilB *Breaker
	if !nilB.Allow() {
		t.Fatal("nil breaker must always allow")
	}
	if got := nilB.State(); got != "disabled" {
		t.Fatalf("nil breaker state %q", got)
	}
	if NewBreaker(0, time.Second) != nil {
		t.Fatal("threshold 0 should disable the breaker")
	}
}

func TestErrorBodiesAreJSON(t *testing.T) {
	s := New(testConfig())
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		do   func() (*http.Response, []byte)
		want int
	}{
		{"bad body", func() (*http.Response, []byte) {
			return post(t, ts.Client(), ts.URL+"/v1/plan", `{"nope":1}`)
		}, http.StatusBadRequest},
		{"bad app", func() (*http.Response, []byte) {
			return post(t, ts.Client(), ts.URL+"/v1/plan", planBody(99))
		}, http.StatusBadRequest},
		{"bad target", func() (*http.Response, []byte) {
			return post(t, ts.Client(), ts.URL+"/v1/plan", `{"app":1,"target":"abacus"}`)
		}, http.StatusBadRequest},
		{"bad mode", func() (*http.Response, []byte) {
			return post(t, ts.Client(), ts.URL+"/v1/simulate", `{"app":1,"mode":"warp"}`)
		}, http.StatusBadRequest},
		{"bad seed", func() (*http.Response, []byte) {
			resp, err := ts.Client().Get(ts.URL + "/v1/catalog?seed=banana")
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var body []byte
			body, err = readAll(resp)
			if err != nil {
				t.Fatal(err)
			}
			return resp, body
		}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, body := tc.do()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d (%s), want %d", tc.name, resp.StatusCode, body, tc.want)
			continue
		}
		decodeError(t, resp, body)
	}
}

func TestReadyzDrainingBodyIsJSON(t *testing.T) {
	s := New(testConfig())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := readAll(resp)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz: status %d, want 503", resp.StatusCode)
	}
	if msg := decodeError(t, resp, body); msg != "draining" {
		t.Errorf("draining message %q", msg)
	}
}

func readAll(resp *http.Response) ([]byte, error) {
	return io.ReadAll(resp.Body)
}

func TestChaosLatencyCounted(t *testing.T) {
	cfg := testConfig()
	cfg.Chaos = fault.NewChaos(3, 0, 1, time.Millisecond) // always delay, never fail
	s := New(cfg)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := post(t, ts.Client(), ts.URL+"/v1/plan", planBody(2))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s), want 200", resp.StatusCode, body)
	}
	snap := s.Registry().Snapshot()
	if snap.Counters["server.resilience.delayed"] != 1 {
		t.Errorf("delayed = %d, want 1", snap.Counters["server.resilience.delayed"])
	}
}
