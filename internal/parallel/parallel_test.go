package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersDefaultsToGOMAXPROCS(t *testing.T) {
	if got, want := Workers(0), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("Workers(0) = %d, want %d", got, want)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d, want 7", got)
	}
}

// TestForEachMatchesSequential is the engine's core contract: the output
// slice is identical to the sequential loop at every worker count.
func TestForEachMatchesSequential(t *testing.T) {
	const n = 257
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{1, 2, 3, 4, 8, 33, n + 5} {
		got := make([]int, n)
		err := ForEach(context.Background(), workers, n, func(_ context.Context, i int) error {
			got[i] = i * i
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

// TestForEachRunsEveryItemExactlyOnce guards against dropped or duplicated
// indices under contention.
func TestForEachRunsEveryItemExactlyOnce(t *testing.T) {
	const n = 1000
	counts := make([]atomic.Int32, n)
	if err := ForEach(context.Background(), 16, n, func(_ context.Context, i int) error {
		counts[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("item %d ran %d times", i, c)
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	if err := ForEach(context.Background(), workers, 64, func(_ context.Context, _ int) error {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

// TestForEachFirstErrorByIndex asserts the parallel error matches the
// sequential loop's: lowest failing index wins regardless of completion
// order.
func TestForEachFirstErrorByIndex(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, workers := range []int{1, 4} {
		err := ForEach(context.Background(), workers, 32, func(_ context.Context, i int) error {
			switch i {
			case 3:
				// Fail late so a higher index can fail first in real time.
				time.Sleep(20 * time.Millisecond)
				return errLow
			case 20:
				return errHigh
			}
			return nil
		})
		// Sequential stops at index 3 and never reaches 20; parallel may
		// see both but must still report the lowest index.
		if workers == 1 {
			if !errors.Is(err, errLow) {
				t.Fatalf("workers=1: err = %v, want %v", err, errLow)
			}
			continue
		}
		if !errors.Is(err, errLow) && !errors.Is(err, errHigh) {
			t.Fatalf("workers=%d: err = %v, want a fn error", workers, err)
		}
		if errors.Is(err, errHigh) {
			t.Fatalf("workers=%d: reported higher-index error before lower", workers)
		}
	}
}

func TestForEachErrorStopsLaunchingItems(t *testing.T) {
	var ran atomic.Int32
	err := ForEach(context.Background(), 2, 10_000, func(_ context.Context, i int) error {
		ran.Add(1)
		if i == 0 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v, want boom", err)
	}
	if r := ran.Load(); r == 10_000 {
		t.Fatal("error did not stop the sweep")
	}
}

func TestForEachHonorsCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int32
		err := ForEach(ctx, workers, 100, func(_ context.Context, _ int) error {
			ran.Add(1)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

func TestForEachMidFlightCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once sync.Once
	err := ForEach(ctx, 2, 10_000, func(_ context.Context, _ int) error {
		once.Do(func() { close(started); cancel() })
		return nil
	})
	<-started
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestForEachZeroItems(t *testing.T) {
	called := false
	if err := ForEach(context.Background(), 4, 0, func(_ context.Context, _ int) error {
		called = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("fn called for empty range")
	}
}
