// Package parallel is the evaluation engine's deterministic fan-out
// primitive. Every hot sweep in the reproduction — per-satellite
// propagation and contact search in sim, the per-figure sweeps in
// experiments, the per-application fleet schedules — is a loop over
// independent items whose results are written back by index. ForEach runs
// such a loop on a bounded worker pool while guaranteeing that the
// observable output is identical to the sequential loop: item i's result
// depends only on item i (callers derive any randomness from a pure
// per-item seed, see xrand), and results land in caller-owned slots
// indexed by i, so scheduling order can never reorder, duplicate, or drop
// a row. That invariant is what lets the golden-determinism tests assert
// byte-identical tables, CSV, and JSON at any worker count.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"kodan/internal/telemetry"
)

// Workers resolves a worker-count knob: n > 0 is used as given, anything
// else falls back to GOMAXPROCS. The zero value of a config field
// therefore means "use all the hardware" while 1 forces the sequential
// path.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(ctx, i) for every i in [0, n) on at most workers
// goroutines and returns the first error by item index (not by completion
// time), so the reported error is the same one the sequential loop would
// have surfaced. A fn error or ctx cancellation stops the launch of new
// items; items already running complete. workers <= 1 runs the loop
// inline on the calling goroutine.
//
// fn must confine its writes to caller-owned, per-index state (out[i] = ...)
// and must not depend on any cross-item mutable state; under that
// contract the results are bit-identical at every worker count.
//
// When the context carries a telemetry probe, ForEach reports worker
// occupancy (parallel.active gauge, whose max is the realized
// parallelism), item counts, per-item run time, and queue wait — the
// delay between the sweep starting and a worker picking an item up. With
// no probe attached the only cost over the uninstrumented loop is a
// context value lookup per ForEach call and a nil check per item.
func ForEach(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	probe := newForEachProbe(ctx)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			start := probe.itemStart()
			if err := fn(ctx, i); err != nil {
				return err
			}
			probe.itemDone(start)
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					return
				}
				start := probe.itemStart()
				if err := fn(ctx, i); err != nil {
					errs[i] = err
					cancel()
					return
				}
				probe.itemDone(start)
			}
		}()
	}
	wg.Wait()
	return firstError(errs)
}

// forEachProbe holds the metric handles of one instrumented sweep; the
// zero value (no registry on the context) makes every call a nil no-op.
type forEachProbe struct {
	active    *telemetry.Gauge
	items     *telemetry.Counter
	itemSecs  *telemetry.Histogram
	queueWait *telemetry.Histogram
	start     time.Time
}

// newForEachProbe resolves the sweep's metrics once, outside the item
// loop, so the per-item cost is a nil check.
func newForEachProbe(ctx context.Context) forEachProbe {
	reg := telemetry.ProbeFrom(ctx).Metrics
	if reg == nil {
		return forEachProbe{}
	}
	scope := reg.Scope("parallel")
	return forEachProbe{
		active:    scope.Gauge("active"),
		items:     scope.Counter("items"),
		itemSecs:  scope.Histogram("item_seconds"),
		queueWait: scope.Histogram("queue_wait_seconds"),
		start:     time.Now(),
	}
}

// itemStart marks a worker busy and returns the item's start time (zero
// when uninstrumented).
func (p forEachProbe) itemStart() time.Time {
	if p.active == nil {
		return time.Time{}
	}
	now := time.Now()
	p.active.Add(1)
	p.queueWait.Observe(now.Sub(p.start).Seconds())
	return now
}

// itemDone marks the worker idle and records the item's run time.
func (p forEachProbe) itemDone(start time.Time) {
	if p.active == nil {
		return
	}
	p.active.Add(-1)
	p.items.Inc()
	p.itemSecs.Observe(time.Since(start).Seconds())
}

// firstError picks the error the sequential loop would have returned: the
// lowest-index fn failure. Context errors only win when no fn failed —
// they mark items abandoned because of a later (higher-index) failure or
// an outside cancellation.
func firstError(errs []error) error {
	var ctxErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if err == context.Canceled || err == context.DeadlineExceeded {
			if ctxErr == nil {
				ctxErr = err
			}
			continue
		}
		return err
	}
	return ctxErr
}
