package value

import (
	"math"
	"testing"
	"testing/quick"
)

func TestChunkDensity(t *testing.T) {
	if d := (Chunk{Bits: 10, ValueBits: 4}).Density(); d != 0.4 {
		t.Fatalf("density = %v", d)
	}
	if d := (Chunk{}).Density(); d != 0 {
		t.Fatalf("empty density = %v", d)
	}
}

func TestLedgerMetrics(t *testing.T) {
	l := Ledger{
		CapacityBits:          100,
		DownlinkedBits:        80,
		HighValueBits:         60,
		ObservedBits:          1000,
		ObservedHighValueBits: 300,
	}
	if got := l.DVD(); got != 0.6 {
		t.Errorf("DVD = %v", got)
	}
	if got := l.Purity(); got != 0.75 {
		t.Errorf("purity = %v", got)
	}
	if got := l.Utilization(); got != 0.8 {
		t.Errorf("utilization = %v", got)
	}
	if got := l.Recovery(); got != 0.2 {
		t.Errorf("recovery = %v", got)
	}
}

func TestLedgerZeroSafe(t *testing.T) {
	var l Ledger
	if l.DVD() != 0 || l.Purity() != 0 || l.Utilization() != 0 || l.Recovery() != 0 {
		t.Fatal("zero ledger metrics not zero")
	}
}

func TestLedgerMerge(t *testing.T) {
	a := Ledger{CapacityBits: 1, DownlinkedBits: 2, HighValueBits: 3, ObservedBits: 4, ObservedHighValueBits: 5}
	b := a
	a.Merge(b)
	if a.CapacityBits != 2 || a.ObservedHighValueBits != 10 {
		t.Fatalf("merge = %+v", a)
	}
}

func TestDrainProportional(t *testing.T) {
	chunks := []Chunk{
		{Bits: 10, ValueBits: 1}, // density 0.1
		{Bits: 10, ValueBits: 9}, // density 0.9
		{Bits: 10, ValueBits: 5}, // density 0.5
	}
	// FIFO draining sends the mix: half the queue at half the total value.
	bits, val := Drain(chunks, 15)
	if bits != 15 || math.Abs(val-7.5) > 1e-12 {
		t.Fatalf("drain took bits=%v val=%v, want proportional mix", bits, val)
	}
}

func TestDrainPriorityPrefersDense(t *testing.T) {
	chunks := []Chunk{
		{Bits: 10, ValueBits: 1},
		{Bits: 10, ValueBits: 9},
		{Bits: 10, ValueBits: 5},
	}
	bits, val := DrainPriority(chunks, 10)
	if bits != 10 || val != 9 {
		t.Fatalf("priority drain = %v/%v, want the dense chunk", bits, val)
	}
	bits, val = DrainPriority(chunks, 20)
	if bits != 20 || val != 14 {
		t.Fatalf("two-chunk priority drain = %v/%v", bits, val)
	}
	// Priority never does worse than FIFO.
	for c := 2.5; c < 35; c += 2.5 {
		_, pv := DrainPriority(chunks, c)
		_, fv := Drain(chunks, c)
		if pv+1e-12 < fv {
			t.Fatalf("priority (%v) below FIFO (%v) at capacity %v", pv, fv, c)
		}
	}
}

func TestDrainPrioritySplitsLastChunk(t *testing.T) {
	chunks := []Chunk{{Bits: 10, ValueBits: 8}}
	bits, val := DrainPriority(chunks, 4)
	if bits != 4 || math.Abs(val-3.2) > 1e-12 {
		t.Fatalf("partial drain = %v/%v", bits, val)
	}
}

func TestDrainUnderfilled(t *testing.T) {
	chunks := []Chunk{{Bits: 5, ValueBits: 5}}
	bits, val := Drain(chunks, 100)
	if bits != 5 || val != 5 {
		t.Fatalf("underfilled drain = %v/%v", bits, val)
	}
}

func TestDrainProperties(t *testing.T) {
	if err := quick.Check(func(sizes [4]uint8, fracs [4]uint8, capRaw uint16) bool {
		var chunks []Chunk
		var totalBits, totalVal float64
		for i := range sizes {
			b := float64(sizes[i])
			v := b * float64(fracs[i]) / 255
			chunks = append(chunks, Chunk{Bits: b, ValueBits: v})
			totalBits += b
			totalVal += v
		}
		capacity := float64(capRaw % 1200)
		for _, drain := range []func([]Chunk, float64) (float64, float64){Drain, DrainPriority} {
			bits, val := drain(chunks, capacity)
			// Never exceed capacity or totals; value never exceeds bits.
			if !(bits <= capacity+1e-9 && bits <= totalBits+1e-9 &&
				val <= totalVal+1e-9 && val <= bits+1e-9 && bits >= 0 && val >= 0) {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDrainMonotoneInCapacity(t *testing.T) {
	chunks := []Chunk{{10, 3}, {20, 15}, {5, 5}, {8, 1}}
	prevVal := -1.0
	for c := 0.0; c <= 50; c += 5 {
		_, val := Drain(chunks, c)
		if val < prevVal-1e-12 {
			t.Fatalf("value not monotone in capacity at %v", c)
		}
		prevVal = val
	}
}

func TestDrainEmpty(t *testing.T) {
	if b, v := Drain(nil, 100); b != 0 || v != 0 {
		t.Fatal("empty drain nonzero")
	}
	if b, v := Drain([]Chunk{{10, 5}}, 0); b != 0 || v != 0 {
		t.Fatal("zero-capacity drain nonzero")
	}
}
