// Package value implements the downlink value accounting behind the
// paper's headline metric: data value density (DVD), the fraction of the
// saturated downlink composed of high-value bits. Data moves in chunks
// (whole tiles from elision, masked pixel products from filtering, raw
// frames from the bent pipe); each chunk carries its size and its truly
// high-value portion. A drain step models the downlink queue: the
// satellite sends the densest chunks first until contact capacity runs
// out.
package value

import "sort"

// Chunk is a unit of downlinkable data.
type Chunk struct {
	// Bits is the chunk size.
	Bits float64
	// ValueBits is the truly high-value portion (ValueBits <= Bits).
	ValueBits float64
}

// Density returns the chunk's value density (0 for empty chunks).
func (c Chunk) Density() float64 {
	if c.Bits == 0 {
		return 0
	}
	return c.ValueBits / c.Bits
}

// Ledger accumulates downlink accounting over a deployment.
type Ledger struct {
	// CapacityBits is the total downlink capacity granted by contacts.
	CapacityBits float64
	// DownlinkedBits is what was actually sent (<= CapacityBits).
	DownlinkedBits float64
	// HighValueBits is the truly high-value portion of DownlinkedBits.
	HighValueBits float64
	// ObservedBits is the total sensor data captured.
	ObservedBits float64
	// ObservedHighValueBits is the high-value portion of ObservedBits.
	ObservedHighValueBits float64
}

// Merge accumulates another ledger.
func (l *Ledger) Merge(o Ledger) {
	l.CapacityBits += o.CapacityBits
	l.DownlinkedBits += o.DownlinkedBits
	l.HighValueBits += o.HighValueBits
	l.ObservedBits += o.ObservedBits
	l.ObservedHighValueBits += o.ObservedHighValueBits
}

// DVD returns the data value density of the saturated downlink: high-value
// bits delivered per bit of downlink capacity. Idle capacity counts
// against DVD — an underfilled link wastes the scarce resource the metric
// measures.
func (l Ledger) DVD() float64 {
	if l.CapacityBits == 0 {
		return 0
	}
	return l.HighValueBits / l.CapacityBits
}

// Purity returns the high-value fraction of the bits actually downlinked.
func (l Ledger) Purity() float64 {
	if l.DownlinkedBits == 0 {
		return 0
	}
	return l.HighValueBits / l.DownlinkedBits
}

// Utilization returns the downlinked fraction of capacity.
func (l Ledger) Utilization() float64 {
	if l.CapacityBits == 0 {
		return 0
	}
	return l.DownlinkedBits / l.CapacityBits
}

// Recovery returns the fraction of observed high-value data that reached
// the ground — the y-axis of Figure 5.
func (l Ledger) Recovery() float64 {
	if l.ObservedHighValueBits == 0 {
		return 0
	}
	return l.HighValueBits / l.ObservedHighValueBits
}

// Drain downlinks chunks into capacity FIFO-style over a long deployment:
// the queue accumulates the steady-state output mix and contacts transmit
// it in arrival order, so when output exceeds capacity every chunk is sent
// in proportion. This matches the paper's runtime, where the selection
// logic — not downlink reordering — is what concentrates value. Returns
// the (bits, valueBits) actually sent.
func Drain(chunks []Chunk, capacityBits float64) (bits, valueBits float64) {
	if capacityBits <= 0 || len(chunks) == 0 {
		return 0, 0
	}
	var totalBits, totalVal float64
	for _, c := range chunks {
		totalBits += c.Bits
		totalVal += c.ValueBits
	}
	if totalBits <= capacityBits {
		return totalBits, totalVal
	}
	frac := capacityBits / totalBits
	return capacityBits, totalVal * frac
}

// DrainPriority is the reordered-queue variant: the satellite sends the
// densest chunks first, splitting the chunk that straddles the capacity
// boundary. Used as an ablation against the FIFO queue (a smarter queue
// partially substitutes for elision).
func DrainPriority(chunks []Chunk, capacityBits float64) (bits, valueBits float64) {
	if capacityBits <= 0 || len(chunks) == 0 {
		return 0, 0
	}
	sorted := make([]Chunk, len(chunks))
	copy(sorted, chunks)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].Density() > sorted[j].Density()
	})
	remaining := capacityBits
	for _, c := range sorted {
		if remaining <= 0 {
			break
		}
		take := c.Bits
		if take > remaining {
			// Partial transfer carries proportional value.
			frac := remaining / c.Bits
			bits += remaining
			valueBits += c.ValueBits * frac
			remaining = 0
			break
		}
		bits += take
		valueBits += c.ValueBits
		remaining -= take
	}
	return bits, valueBits
}
