// Package dataset assembles the representative reference dataset the
// one-time transformation step runs on (Section 4): frames sampled across
// the world, split into tiles at a chosen tiling, with truth masks and
// label vectors, plus train/validation splitting and flip augmentation.
// The paper uses the Sentinel-2 cloud-mask catalogue; our frames come from
// the synthetic world in internal/imagery (see DESIGN.md for why the
// substitution preserves the relevant structure).
package dataset

import (
	"fmt"
	"math"

	"kodan/internal/imagery"
	"kodan/internal/tiling"
	"kodan/internal/xrand"
)

// ModelInputPx is the neural-network input resolution in the paper's frame
// geometry (1K x 1K for a 10K x 10K frame).
const ModelInputPx = 1000

// FramePx is the native frame resolution the paper's example uses.
const FramePx = 10000

// Config describes dataset generation.
type Config struct {
	// Seed drives the world generator and sampling. Same seed, same data.
	Seed uint64
	// Frames is the number of frames to sample.
	Frames int
	// Tiling is the per-frame tile layout.
	Tiling tiling.Tiling
	// TileRes is the rendered tile resolution in pixels per side. This is
	// the model-input raster, scaled down from the paper's 1000 px for
	// tractability; decimation blur is computed against the paper's true
	// geometry, so the quality effects are preserved.
	TileRes int
	// FrameSizeDeg is the frame footprint side in degrees (~1.45 for a
	// 161 km Landsat row pitch).
	FrameSizeDeg float64
	// MaxLatDeg bounds the sampled frame latitudes.
	MaxLatDeg float64
}

// DefaultConfig returns a configuration sized for the reproduction's
// transformation step: 240 frames at the given tiling.
func DefaultConfig(seed uint64, t tiling.Tiling) Config {
	return Config{
		Seed:         seed,
		Frames:       240,
		Tiling:       t,
		TileRes:      24,
		FrameSizeDeg: 1.45,
		MaxLatDeg:    70,
	}
}

// validate rejects unusable configurations.
func (c Config) validate() error {
	if c.Frames <= 0 {
		return fmt.Errorf("dataset: non-positive frame count %d", c.Frames)
	}
	if c.TileRes <= 1 {
		return fmt.Errorf("dataset: tile resolution %d too small", c.TileRes)
	}
	if c.FrameSizeDeg <= 0 {
		return fmt.Errorf("dataset: non-positive frame size")
	}
	return c.Tiling.Validate()
}

// Sample is one tile of the representative dataset.
type Sample struct {
	// Tile is the rendered tile.
	Tile *imagery.Tile
	// Frame is the index of the frame this tile came from.
	Frame int
}

// Dataset is a set of samples plus the configuration that produced them.
type Dataset struct {
	Config  Config
	Samples []Sample
}

// Generate renders the dataset. Frame centers are scattered by a
// golden-angle sequence (deterministic, near-uniform) over the latitude
// band; each frame is split by the configured tiling and every tile is
// rendered with the tiling's decimation blur.
func Generate(cfg Config) (*Dataset, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	w := imagery.NewWorld(cfg.Seed)
	blur := cfg.Tiling.RenderBlurPx(FramePx, ModelInputPx)

	ds := &Dataset{Config: cfg}
	const golden = 137.50776405003785
	for f := 0; f < cfg.Frames; f++ {
		lon := math.Mod(float64(f)*golden, 360) - 180
		// Low-discrepancy latitude scatter over the band.
		lat := -cfg.MaxLatDeg + math.Mod(float64(f)*0.6180339887498949, 1)*2*cfg.MaxLatDeg
		frame := imagery.Region{
			LonDeg:  lon,
			LatDeg:  lat - cfg.FrameSizeDeg/2,
			SizeDeg: cfg.FrameSizeDeg,
		}
		for _, reg := range frame.Split(cfg.Tiling.PerSide) {
			ds.Samples = append(ds.Samples, Sample{
				Tile:  w.RenderTile(reg, cfg.TileRes, blur),
				Frame: f,
			})
		}
	}
	return ds, nil
}

// Len returns the sample count.
func (d *Dataset) Len() int { return len(d.Samples) }

// CloudFrac returns the pixel-weighted cloudy fraction of the dataset.
func (d *Dataset) CloudFrac() float64 {
	var cloudy, total float64
	for _, s := range d.Samples {
		cloudy += s.Tile.CloudFrac * float64(s.Tile.Pixels())
		total += float64(s.Tile.Pixels())
	}
	if total == 0 {
		return 0
	}
	return cloudy / total
}

// LabelVectors returns the per-sample label vectors for clustering.
func (d *Dataset) LabelVectors() [][]float64 {
	out := make([][]float64, d.Len())
	for i, s := range d.Samples {
		out[i] = s.Tile.LabelVector()
	}
	return out
}

// Split partitions the dataset into train and validation subsets by frame
// (all tiles of a frame stay together, so validation frames are truly
// unseen). valFrac is the approximate validation fraction.
func (d *Dataset) Split(valFrac float64, rng *xrand.Rand) (train, val *Dataset) {
	if valFrac < 0 || valFrac >= 1 {
		panic("dataset: valFrac outside [0,1)")
	}
	frames := map[int]bool{}
	for _, s := range d.Samples {
		frames[s.Frame] = true
	}
	ids := make([]int, 0, len(frames))
	for id := range frames {
		ids = append(ids, id)
	}
	// Map iteration order is random; sort for determinism.
	sortInts(ids)
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	nVal := int(float64(len(ids)) * valFrac)
	valSet := map[int]bool{}
	for _, id := range ids[:nVal] {
		valSet[id] = true
	}
	train = &Dataset{Config: d.Config}
	val = &Dataset{Config: d.Config}
	for _, s := range d.Samples {
		if valSet[s.Frame] {
			val.Samples = append(val.Samples, s)
		} else {
			train.Samples = append(train.Samples, s)
		}
	}
	return train, val
}

// sortInts is insertion sort — id lists are small and this avoids pulling
// sort into the hot path dependencies.
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// Augment returns the dataset extended with horizontally and vertically
// flipped copies of each tile — the paper's "data augmentation to improve
// accuracy and avoid over-fitting" (Section 4).
func (d *Dataset) Augment() *Dataset {
	out := &Dataset{Config: d.Config, Samples: make([]Sample, 0, 3*d.Len())}
	out.Samples = append(out.Samples, d.Samples...)
	for _, s := range d.Samples {
		out.Samples = append(out.Samples,
			Sample{Tile: flipTile(s.Tile, true, false), Frame: s.Frame},
			Sample{Tile: flipTile(s.Tile, false, true), Frame: s.Frame},
		)
	}
	return out
}

// flipTile mirrors a tile horizontally and/or vertically. Aggregate fields
// are unchanged by flipping.
func flipTile(t *imagery.Tile, h, v bool) *imagery.Tile {
	res := t.Res
	out := &imagery.Tile{
		Res:       res,
		GeoFracs:  t.GeoFracs,
		Dominant:  t.Dominant,
		CloudFrac: t.CloudFrac,
		Region:    t.Region,
	}
	out.Features = make([][]float64, len(t.Features))
	for c := range t.Features {
		out.Features[c] = make([]float64, len(t.Features[c]))
	}
	out.Truth = make([]bool, len(t.Truth))
	for i := 0; i < res; i++ {
		for j := 0; j < res; j++ {
			si, sj := i, j
			if v {
				si = res - 1 - i
			}
			if h {
				sj = res - 1 - j
			}
			dst, src := i*res+j, si*res+sj
			out.Truth[dst] = t.Truth[src]
			for c := range t.Features {
				out.Features[c][dst] = t.Features[c][src]
			}
		}
	}
	out.CacheSummary()
	return out
}
