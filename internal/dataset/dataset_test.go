package dataset

import (
	"math"
	"testing"

	"kodan/internal/imagery"
	"kodan/internal/tiling"
	"kodan/internal/xrand"
)

func smallConfig(t tiling.Tiling) Config {
	cfg := DefaultConfig(2023, t)
	cfg.Frames = 60
	cfg.TileRes = 16
	return cfg
}

func TestGenerateCounts(t *testing.T) {
	cfg := smallConfig(tiling.Tiling{PerSide: 3})
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 60*9 {
		t.Fatalf("samples = %d, want 540", ds.Len())
	}
	frames := map[int]int{}
	for _, s := range ds.Samples {
		frames[s.Frame]++
	}
	if len(frames) != 60 {
		t.Fatalf("frames = %d", len(frames))
	}
	for f, n := range frames {
		if n != 9 {
			t.Fatalf("frame %d has %d tiles", f, n)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := smallConfig(tiling.Tiling{PerSide: 3})
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Generate(cfg)
	for i := range a.Samples {
		if a.Samples[i].Tile.CloudFrac != b.Samples[i].Tile.CloudFrac {
			t.Fatal("generation not deterministic")
		}
	}
}

func TestCloudFracNearSentinel(t *testing.T) {
	ds, err := Generate(DefaultConfig(2023, tiling.Tiling{PerSide: 3}))
	if err != nil {
		t.Fatal(err)
	}
	// Paper's dataset: 52% cloudy. Accept a band.
	if f := ds.CloudFrac(); f < 0.42 || f > 0.62 {
		t.Fatalf("cloud fraction = %.3f", f)
	}
}

func TestValidationRejectsBadConfig(t *testing.T) {
	bad := DefaultConfig(1, tiling.Tiling{PerSide: 3})
	bad.Frames = 0
	if _, err := Generate(bad); err == nil {
		t.Fatal("zero frames accepted")
	}
	bad = DefaultConfig(1, tiling.Tiling{PerSide: 0})
	if _, err := Generate(bad); err == nil {
		t.Fatal("bad tiling accepted")
	}
	bad = DefaultConfig(1, tiling.Tiling{PerSide: 3})
	bad.TileRes = 1
	if _, err := Generate(bad); err == nil {
		t.Fatal("1px tiles accepted")
	}
}

func TestSplitByFrame(t *testing.T) {
	ds, err := Generate(smallConfig(tiling.Tiling{PerSide: 3}))
	if err != nil {
		t.Fatal(err)
	}
	train, val := ds.Split(0.25, xrand.New(1))
	if train.Len()+val.Len() != ds.Len() {
		t.Fatalf("split lost samples: %d + %d != %d", train.Len(), val.Len(), ds.Len())
	}
	// No frame straddles the split.
	trainFrames := map[int]bool{}
	for _, s := range train.Samples {
		trainFrames[s.Frame] = true
	}
	for _, s := range val.Samples {
		if trainFrames[s.Frame] {
			t.Fatalf("frame %d in both splits", s.Frame)
		}
	}
	// Roughly a quarter of frames in validation.
	valFrames := map[int]bool{}
	for _, s := range val.Samples {
		valFrames[s.Frame] = true
	}
	if n := len(valFrames); n < 10 || n > 20 {
		t.Fatalf("validation frames = %d of 60", n)
	}
}

func TestSplitPanicsOnBadFrac(t *testing.T) {
	ds, _ := Generate(smallConfig(tiling.Tiling{PerSide: 3}))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	ds.Split(1.0, xrand.New(1))
}

func TestLabelVectors(t *testing.T) {
	ds, _ := Generate(smallConfig(tiling.Tiling{PerSide: 3}))
	lvs := ds.LabelVectors()
	if len(lvs) != ds.Len() {
		t.Fatalf("label vectors = %d", len(lvs))
	}
	for _, lv := range lvs {
		if len(lv) != int(imagery.NumGeoClasses)+1 {
			t.Fatalf("label vector dim = %d", len(lv))
		}
	}
}

func TestAugmentTriples(t *testing.T) {
	ds, _ := Generate(smallConfig(tiling.Tiling{PerSide: 3}))
	aug := ds.Augment()
	if aug.Len() != 3*ds.Len() {
		t.Fatalf("augmented = %d, want %d", aug.Len(), 3*ds.Len())
	}
	// Flips preserve aggregate statistics.
	if math.Abs(aug.CloudFrac()-ds.CloudFrac()) > 1e-12 {
		t.Fatal("augmentation changed cloud fraction")
	}
}

func TestFlipTileGeometry(t *testing.T) {
	w := imagery.NewWorld(5)
	tl := w.RenderTile(imagery.Region{LonDeg: 0, LatDeg: 10, SizeDeg: 1}, 8, 0)
	h := flipTile(tl, true, false)
	// Horizontal flip: row i reversed.
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if h.Truth[i*8+j] != tl.Truth[i*8+(7-j)] {
				t.Fatal("horizontal flip wrong")
			}
		}
	}
	v := flipTile(tl, false, true)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if v.Features[0][i*8+j] != tl.Features[0][(7-i)*8+j] {
				t.Fatal("vertical flip wrong")
			}
		}
	}
	// Double flip is identity.
	hh := flipTile(h, true, false)
	for p := range tl.Truth {
		if hh.Truth[p] != tl.Truth[p] {
			t.Fatal("double flip not identity")
		}
	}
}

func TestCoarserTilingFewerPurerTiles(t *testing.T) {
	// Finer tilings yield more near-pure tiles (smaller tiles sit inside
	// weather systems); this is the geometric driver of both elision and
	// tiling-precision effects.
	pure := func(perSide int) float64 {
		ds, err := Generate(smallConfig(tiling.Tiling{PerSide: perSide}))
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, s := range ds.Samples {
			if s.Tile.CloudFrac < 0.05 || s.Tile.CloudFrac > 0.95 {
				n++
			}
		}
		return float64(n) / float64(ds.Len())
	}
	coarse, fine := pure(3), pure(11)
	if fine <= coarse {
		t.Fatalf("pure-tile fraction: 9-tile %.3f, 121-tile %.3f — want fine > coarse", coarse, fine)
	}
}
